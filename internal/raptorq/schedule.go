package raptorq

import (
	"sync"

	"polyraptor/internal/gf256"
)

// Recorded elimination schedules: the structural part of a solve
// (pivot selection, inactivation, the dense Gauss-Jordan) depends only
// on which rows are present, never on the symbol bytes. The solver can
// therefore run once in recording mode and emit the exact sequence of
// GF(256) row operations it performed; replaying that sequence over a
// fresh set of right-hand-side symbols reproduces the solve
// byte-for-byte at pure-kernel speed, with zero allocation and zero
// structural work. This is the factorization cache the codec pipeline
// is built on:
//
//   - the encoder's precode system depends only on K, so one recorded
//     schedule per K serves every encode (precodeCache);
//   - a decoder's system depends on (K, received-ESI set), so repeated
//     loss patterns reuse a bounded cache of schedules
//     (decodeSchedCache);
//   - the partial-systematic decode path replays the precode schedule
//     twice (once over byte lanes, once over the received sources) to
//     reduce the whole decode to an m x m system over the missing rows.

// schedOp is one recorded row operation over the replay slots.
type schedOp struct {
	dst, src int32
	kind     uint8
	beta     byte
}

// schedOp kinds.
const (
	opAdd    uint8 = iota // syms[dst] ^= syms[src]
	opMulAdd              // syms[dst] += beta * syms[src]
	opScale               // syms[dst] *= beta (src == dst)
)

// schedule is a replayable elimination: ops over nSlots row slots,
// and outSlot mapping each intermediate column to the slot that holds
// its value after replay. Slot layout follows the recording solver:
// binary row r is slot r, dense row j is slot (number of binary
// rows)+j. A schedule is immutable after prune and safe for concurrent
// replay over distinct slot sets.
type schedule struct {
	nSlots  int
	ops     []schedOp
	outSlot []int32
}

// replay applies the recorded operations to the caller's slot symbols.
// syms must have nSlots rows of equal width (any width: the schedule
// is structure-only, so 1-byte coefficient lanes and full symbols
// replay identically).
//
//polyvet:noalloc schedule replay is the steady-state codec solve: pure gf256 kernel calls over caller-provided slots
func (sc *schedule) replay(syms [][]byte) {
	for _, op := range sc.ops {
		switch op.kind {
		case opAdd:
			gf256.AddRow(syms[op.dst], syms[op.src])
		case opMulAdd:
			gf256.MulAddRow(syms[op.dst], syms[op.src], op.beta)
		default:
			gf256.ScaleRow(syms[op.dst], op.beta)
		}
	}
}

// prune drops operations that cannot influence any output slot: a
// backward liveness pass seeded from outSlot. The big win is the dense
// HDPC substitution — every HDPC row absorbs one MulAddRow per pivot
// during recording, but only the handful of HDPC rows that end up as
// Gauss-Jordan pivots ever reach an output, so the rest of that work
// vanishes from the replay.
func (sc *schedule) prune() {
	live := make([]bool, sc.nSlots)
	for _, s := range sc.outSlot {
		live[s] = true
	}
	keep := make([]bool, len(sc.ops))
	for i := len(sc.ops) - 1; i >= 0; i-- {
		op := sc.ops[i]
		if !live[op.dst] {
			continue
		}
		keep[i] = true
		live[op.src] = true
	}
	out := sc.ops[:0]
	for i, op := range sc.ops {
		if keep[i] {
			out = append(out, op)
		}
	}
	sc.ops = out
}

// slotArena owns the backing store for one set of replay slots. The
// buffer and the view headers are reused across calls, so steady-state
// codec work allocates nothing.
type slotArena struct {
	buf   []byte
	views [][]byte
}

// slots returns n reusable symbol views of width t. Contents are
// whatever the previous call left behind: callers must clear or
// overwrite every slot they rely on.
//
//polyvet:noalloc steady-state replay scratch; the grow path is split out cold
func (a *slotArena) slots(n, t int) [][]byte {
	if cap(a.buf) < n*t || cap(a.views) < n {
		a.grow(n, t)
	}
	a.buf = a.buf[:n*t]
	a.views = a.views[:n]
	for i := range a.views {
		a.views[i] = a.buf[i*t : (i+1)*t : (i+1)*t]
	}
	return a.views
}

// grow is the cold path of slots. noinline keeps its allocations out
// of the annotated caller under the compiler-verified gate.
//
//go:noinline
func (a *slotArena) grow(n, t int) {
	a.buf = make([]byte, n*t)
	a.views = make([][]byte, n)
}

var (
	precodeMu sync.Mutex
	// precodeCache holds one recorded precode elimination per K. The
	// precode system (S LDPC + H HDPC + K LT rows over L columns) is a
	// function of K alone, so the entry count is bounded by the number
	// of distinct block sizes the process touches — in practice one or
	// two.
	precodeCache = map[int]*schedule{}
)

// precodeSchedule returns the recorded precode elimination for p,
// building and caching it on first use. Two goroutines racing on a
// cold K may both build; the schedules are equivalent and either may
// win the cache slot.
func precodeSchedule(p Params) (*schedule, error) {
	precodeMu.Lock()
	sc := precodeCache[p.K]
	precodeMu.Unlock()
	if sc != nil {
		return sc, nil
	}
	s := newSolver(p.L, 0)
	s.record = true
	addConstraintRows(s, p)
	var scratch []int32 // reused LT expansion; addBinaryRow copies it
	for i := 0; i < p.K; i++ {
		scratch = p.AppendLTIndices(scratch[:0], uint32(i))
		s.addBinaryRow(scratch, nil)
	}
	if _, err := s.solve(); err != nil {
		// The systematic index search guarantees an invertible precode,
		// so this is unreachable unless the cache was poisoned.
		return nil, err
	}
	precodeMu.Lock()
	precodeCache[p.K] = s.sched
	precodeMu.Unlock()
	return s.sched, nil
}

// esiKey hashes a decode pattern (K plus the sorted received-ESI set)
// for the schedule cache: FNV-1a over the words.
//
//polyvet:noalloc per-decode cache key on the decode hot path
//polyvet:nobce single forward range walk; nothing indexes per element
func esiKey(k int, esis []uint32) uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	h ^= uint64(k)
	h *= prime
	for _, e := range esis {
		h ^= uint64(e)
		h *= prime
	}
	return h
}

// decodeSched is one cached decode elimination: the exact pattern it
// was recorded for (guarding against hash collisions) plus the
// schedule. Symbol width is not part of the key — schedules are
// structure-only and replay at any width.
type decodeSched struct {
	k    int
	esis []uint32
	s    *schedule
}

// decodeSchedCache is a bounded FIFO cache of decode schedules keyed
// by (K, sorted ESI set). FIFO via the order slice keeps eviction
// deterministic (no map iteration). Safe for concurrent use.
type decodeSchedCache struct {
	mu    sync.Mutex
	cap   int
	m     map[uint64]*decodeSched
	order []uint64
}

func newDecodeSchedCache(capacity int) *decodeSchedCache {
	if capacity < 1 {
		capacity = 1
	}
	return &decodeSchedCache{cap: capacity, m: make(map[uint64]*decodeSched, capacity)}
}

// defaultDecodeSchedCache is shared by every Decoder unless a test
// injects its own. 64 entries of a few thousand 8-byte ops each keep
// the bound in the low megabytes.
var defaultDecodeSchedCache = newDecodeSchedCache(64)

func equalESIs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the schedule recorded for exactly (k, esis), or nil.
func (c *decodeSchedCache) get(k int, esis []uint32) *schedule {
	key := esiKey(k, esis)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.m[key]
	if e == nil || e.k != k || !equalESIs(e.esis, esis) {
		return nil
	}
	return e.s
}

// put stores a schedule for (k, esis), evicting the oldest entries
// when full. esis is copied. A hash collision overwrites the colliding
// entry (correctness is preserved by get's exact match).
func (c *decodeSchedCache) put(k int, esis []uint32, s *schedule) {
	key := esiKey(k, esis)
	cp := make([]uint32, len(esis))
	copy(cp, esis)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; !exists {
		for len(c.m) >= c.cap && len(c.order) > 0 {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.m[key] = &decodeSched{k: k, esis: cp, s: s}
}

// len reports the current entry count (for tests).
func (c *decodeSchedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
