package raptorq

import (
	"math/rand"
	"testing"
)

// measureFailureRate runs `trials` random-loss decodes of a K-symbol
// block where the decoder holds exactly K+overhead distinct symbols
// (random mix of source and repair) and returns the failure fraction.
func measureFailureRate(t testing.TB, k, overhead, trials int, seed int64) float64 {
	t.Helper()
	// Tiny symbols: the failure behaviour is purely structural.
	src := make([][]byte, k)
	for i := range src {
		src[i] = []byte{byte(i), byte(i >> 8)}
	}
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	failures := 0
	for trial := 0; trial < trials; trial++ {
		dec, err := NewDecoder(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Choose K+overhead distinct ESIs from a window of source +
		// plenty of repair symbols.
		window := 4 * k
		perm := rng.Perm(window)
		for _, e := range perm[:k+overhead] {
			dec.AddSymbol(uint32(e), enc.Symbol(uint32(e)))
		}
		if _, err := dec.Decode(); err != nil {
			failures++
		}
	}
	return float64(failures) / float64(trials)
}

// TestDecodeFailureCurve checks the paper's footnote-2 property: the
// failure probability collapses as overhead symbols are added. The RFC
// quotes ~1e-2 at +0, 1e-4 at +1 and 1e-6 at +2; with affordable trial
// counts we assert monotone decrease and near-zero failures at +2.
func TestDecodeFailureCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("failure curve needs many trials")
	}
	const trials = 400
	f0 := measureFailureRate(t, 64, 0, trials, 1)
	f1 := measureFailureRate(t, 64, 1, trials, 2)
	f2 := measureFailureRate(t, 64, 2, trials, 3)
	t.Logf("failure rates: +0: %.4f  +1: %.4f  +2: %.4f", f0, f1, f2)
	if f0 > 0.10 {
		t.Fatalf("failure at zero overhead = %.3f, want <= 0.10", f0)
	}
	if f1 > f0 && f1 > 0.02 {
		t.Fatalf("failure at +1 overhead = %.3f did not improve on +0 (%.3f)", f1, f0)
	}
	if f2 > 0.005 {
		t.Fatalf("failure at +2 overhead = %.4f, want ~0 (paper: 1e-6)", f2)
	}
}

// TestOverheadModelMatchesMeasured ties the closed-form overhead model
// used by the protocol simulator to the real codec's behaviour: the
// model must not be optimistic by more than a factor the simulation
// outcome is insensitive to.
func TestOverheadModelMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("needs many trials")
	}
	f2 := measureFailureRate(t, 32, 2, 600, 4)
	if model := DecodeFailureProb(2); f2 > 50*model && f2 > 0.01 {
		t.Fatalf("measured failure at +2 (%.4f) wildly exceeds model (%.6f)", f2, model)
	}
}

// DecodeFailureProb is exercised here and consumed by the simulator.
func TestDecodeFailureProbShape(t *testing.T) {
	if DecodeFailureProb(0) != 1e-2 {
		t.Fatalf("P(fail|+0) = %v, want 1e-2", DecodeFailureProb(0))
	}
	if DecodeFailureProb(1) != 1e-4 {
		t.Fatalf("P(fail|+1) = %v, want 1e-4", DecodeFailureProb(1))
	}
	if DecodeFailureProb(2) != 1e-6 {
		t.Fatalf("P(fail|+2) = %v, want 1e-6", DecodeFailureProb(2))
	}
	if DecodeFailureProb(-1) != 1 {
		t.Fatal("P(fail) with negative overhead must be 1")
	}
	if DecodeFailureProb(100) > 1e-100 {
		t.Fatal("P(fail) must become negligible for large overhead")
	}
}
