package raptorq

import (
	"testing"
	"testing/quick"
)

func mustParams(t testing.TB, k int) Params {
	t.Helper()
	p, err := NewParams(k)
	if err != nil {
		t.Fatalf("NewParams(%d): %v", k, err)
	}
	return p
}

func TestLTIndicesDistinctAndInRange(t *testing.T) {
	p := mustParams(t, 200)
	check := func(esi uint32) bool {
		idx := p.LTIndices(esi)
		if len(idx) == 0 {
			return false
		}
		seen := make(map[int32]bool, len(idx))
		for _, c := range idx {
			if c < 0 || c >= int32(p.L) || seen[c] {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLTIndicesDeterministic(t *testing.T) {
	p := mustParams(t, 64)
	for esi := uint32(0); esi < 100; esi++ {
		a := p.LTIndices(esi)
		b := p.LTIndices(esi)
		if len(a) != len(b) {
			t.Fatalf("esi %d: lengths differ", esi)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("esi %d: indices differ at %d", esi, i)
			}
		}
	}
}

func TestDegreeDistributionShape(t *testing.T) {
	p := mustParams(t, 1000)
	counts := make(map[int]int)
	const n = 20000
	for esi := uint32(0); esi < n; esi++ {
		counts[p.Degree(esi+1000)]++ // repair region
	}
	// Degree 2 must dominate (LT soliton-like shape): roughly half.
	frac2 := float64(counts[2]) / n
	if frac2 < 0.40 || frac2 > 0.60 {
		t.Fatalf("degree-2 fraction = %.3f, want ~0.5", frac2)
	}
	// Degree 1 must be rare but present.
	frac1 := float64(counts[1]) / n
	if frac1 > 0.02 {
		t.Fatalf("degree-1 fraction = %.3f, want < 0.02", frac1)
	}
	// Mean degree should be modest (fountain codes: ~4-6).
	sum := 0
	for d, c := range counts {
		sum += d * c
	}
	mean := float64(sum) / n
	if mean < 3 || mean > 8 {
		t.Fatalf("mean degree = %.2f, want in [3,8]", mean)
	}
}

func TestDegreeCapForTinyBlocks(t *testing.T) {
	p := mustParams(t, 1)
	for esi := uint32(0); esi < 1000; esi++ {
		if d := p.Degree(esi); d > p.L-1 {
			t.Fatalf("esi %d: degree %d exceeds L-1=%d", esi, d, p.L-1)
		}
	}
}

func TestDegTableMonotone(t *testing.T) {
	for i := 1; i < len(degCum); i++ {
		if degCum[i] <= degCum[i-1] {
			t.Fatalf("degCum not strictly increasing at %d", i)
		}
	}
	if degCum[len(degCum)-1] != 1<<20 {
		t.Fatalf("degCum must end at 2^20, got %d", degCum[len(degCum)-1])
	}
}

func TestDegBoundaries(t *testing.T) {
	if deg(0) != 1 {
		t.Fatalf("deg(0) = %d, want 1", deg(0))
	}
	if deg(degCum[1]-1) != 1 {
		t.Fatalf("deg at upper edge of first bucket = %d, want 1", deg(degCum[1]-1))
	}
	if deg(degCum[1]) != 2 {
		t.Fatalf("deg at start of second bucket = %d, want 2", deg(degCum[1]))
	}
	if deg(1<<20-1) != 30 {
		t.Fatalf("deg(max) = %d, want 30", deg(1<<20-1))
	}
}

func TestRndInRangeAndDeterministic(t *testing.T) {
	for _, m := range []uint32{1, 2, 7, 255, 1 << 20} {
		for y := uint32(0); y < 200; y++ {
			v := rnd(y*2654435761, 3, m)
			if v >= m {
				t.Fatalf("rnd out of range: %d >= %d", v, m)
			}
			if v != rnd(y*2654435761, 3, m) {
				t.Fatal("rnd not deterministic")
			}
		}
	}
}

func TestRndSpreads(t *testing.T) {
	// Different i parameters must decorrelate outputs for the same y.
	same := 0
	for y := uint32(0); y < 1000; y++ {
		if rnd(y, 0, 1<<16) == rnd(y, 1, 1<<16) {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("rnd(y,0,·) == rnd(y,1,·) too often: %d/1000", same)
	}
}
