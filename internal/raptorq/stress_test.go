package raptorq

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func TestLargeBlockRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("large block")
	}
	// A 4 MB-block-sized K (2923 symbols at 1436 B — the simulator's
	// geometry) with 20% loss: the inactivation decoder must handle
	// thousands of unknowns.
	k := 2923
	tSize := 64 // keep byte volume modest; structure is what's tested
	rng := rand.New(rand.NewSource(20))
	src := randSymbols(rng, k, tSize)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(k, tSize)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for i := 0; i < k; i++ {
		if rng.Float64() < 0.2 {
			lost++
			continue
		}
		dec.AddSymbol(uint32(i), enc.Symbol(uint32(i)))
	}
	esi := uint32(k)
	for i := 0; i < lost+3; i++ {
		dec.AddSymbol(esi, enc.Symbol(esi))
		esi++
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatalf("large-block decode failed: %v", err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("symbol %d corrupted", i)
		}
	}
}

func TestHugeESIsAreValid(t *testing.T) {
	// Rateless means ESIs far beyond K must produce valid, decodable
	// symbols — including near the uint32 limit.
	k := 24
	src := randSymbols(rand.New(rand.NewSource(21)), k, 16)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(k, 16)
	esis := []uint32{1 << 16, 1 << 24, 1<<31 - 1, 1<<32 - 1, 1<<32 - 2}
	for _, esi := range esis {
		dec.AddSymbol(esi, enc.Symbol(esi))
	}
	// Top up with sequential repair ESIs until decodable.
	esi := uint32(k)
	for !(dec.Ready() && tryDecode(dec)) {
		dec.AddSymbol(esi, enc.Symbol(esi))
		esi++
		if esi > uint32(k+100) {
			t.Fatal("decode did not converge with huge ESIs present")
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("symbol %d corrupted", i)
		}
	}
}

func TestConcurrentParamsDerivation(t *testing.T) {
	// The systematic-index cache must be safe under concurrent access
	// (run with -race).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, k := range []int{11, 37, 128, 513} {
				p, err := NewParams(k)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if p.K != k {
					t.Errorf("goroutine %d: bad params", g)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentSymbolGeneration(t *testing.T) {
	// Encoder.Symbol is documented as safe for concurrent use.
	src := randSymbols(rand.New(rand.NewSource(22)), 64, 64)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	want := enc.Symbol(100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !bytes.Equal(enc.Symbol(100), want) {
					t.Error("concurrent Symbol returned inconsistent data")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDecoderAccumulatesAcrossFailedAttempts(t *testing.T) {
	// A failed Decode (singular) must not corrupt state: adding one
	// more symbol and retrying must succeed and return correct data.
	k := 40
	src := randSymbols(rand.New(rand.NewSource(23)), k, 24)
	enc, _ := NewEncoder(src)
	dec, _ := NewDecoder(k, 24)
	// Feed exactly K symbols repeatedly until we find a singular set,
	// then top up. (With ~1% failure we may not hit one — in that case
	// the test still validates retry-after-success semantics.)
	rng := rand.New(rand.NewSource(24))
	perm := rng.Perm(3 * k)
	for _, e := range perm[:k] {
		dec.AddSymbol(uint32(e), enc.Symbol(uint32(e)))
	}
	_, firstErr := dec.Decode()
	esi := uint32(3 * k)
	for firstErr != nil {
		dec.AddSymbol(esi, enc.Symbol(esi))
		esi++
		_, firstErr = dec.Decode()
		if esi > uint32(3*k+20) {
			t.Fatal("decode never converged")
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("symbol %d corrupted after retry", i)
		}
	}
}

func TestSymbolSizeOneByte(t *testing.T) {
	src := [][]byte{{1}, {2}, {3}, {4}, {5}}
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(5, 1)
	for i := 5; i < 12; i++ {
		dec.AddSymbol(uint32(i), enc.Symbol(uint32(i)))
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i][0] != src[i][0] {
			t.Fatalf("1-byte symbol %d wrong", i)
		}
	}
}
