package raptorq

import "math"

// DecodeFailureProb returns the probability that decoding a source
// block fails when the receiver holds K+overhead distinct encoding
// symbols. This is the closed-form model the protocol simulator uses
// in place of running the real solver per transfer; it matches RFC
// 6330's published curve (and the paper's footnote 2): ~1e-2 at zero
// overhead, improving about two decades per extra symbol, with decode
// impossible below K symbols. TestOverheadModelMatchesMeasured keeps
// this model honest against the real codec in this package.
func DecodeFailureProb(overhead int) float64 {
	if overhead < 0 {
		return 1
	}
	p := math.Pow(10, -2*float64(overhead+1))
	if p < 1e-300 {
		return 0
	}
	return p
}
