package raptorq

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode drives the decoder two ways from one input:
//
//  1. Round trip: encode a deterministic source block, deliver the
//     symbols the mask selects (source and repair ESIs interleaved),
//     and require Decode to either report a sentinel error or
//     reproduce the source bytes exactly.
//  2. Adversarial: feed the raw fuzz bytes themselves as symbol data.
//     Garbage in may mean garbage out, but never a panic.
//
// k and t are folded into small ranges so the fuzzer spends its budget
// on delivery patterns (duplicates, repair-heavy sets, starvation)
// rather than on giant matrices.
func FuzzDecode(f *testing.F) {
	f.Add(uint8(4), uint8(8), int64(1), []byte{0xff})
	f.Add(uint8(1), uint8(1), int64(7), []byte{0x01})
	f.Add(uint8(10), uint8(3), int64(42), []byte{0xaa, 0x55, 0xff})
	f.Add(uint8(13), uint8(5), int64(-9), []byte{0x00, 0xff, 0x0f, 0xf0})
	f.Add(uint8(32), uint8(2), int64(3), bytes.Repeat([]byte{0xfe}, 12))
	// Few-missing mask (k=32): all sources but ESI 0, plus two repairs —
	// lands in the partial-systematic path.
	f.Add(uint8(31), uint8(4), int64(5), []byte{0xfe, 0xff, 0xff, 0xff, 0x03})
	// Repair-heavy mask (k=32): no sources at all, 40 repairs — the
	// full-solver path with a pure-repair equation set.
	f.Add(uint8(31), uint8(4), int64(6), []byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Half-and-half (k=24): alternating sources plus a repair tail.
	f.Add(uint8(23), uint8(3), int64(8), []byte{0x55, 0x55, 0x55, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, kb, tb uint8, seed int64, mask []byte) {
		k := 1 + int(kb)%32
		symSize := 1 + int(tb)%16

		// Deterministic source block from the seed (xorshift — no
		// global RNG, so the target itself is polyvet-clean).
		state := uint64(seed)*0x9e3779b97f4a7c15 + 1
		next := func() byte {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return byte(state)
		}
		source := make([][]byte, k)
		for i := range source {
			source[i] = make([]byte, symSize)
			for j := range source[i] {
				source[i][j] = next()
			}
		}

		enc, err := NewEncoder(source)
		if err != nil {
			t.Fatalf("NewEncoder(k=%d t=%d): %v", k, symSize, err)
		}
		dec, err := NewDecoder(k, symSize)
		if err != nil {
			t.Fatalf("NewDecoder(k=%d t=%d): %v", k, symSize, err)
		}

		// Wrong-size symbols must be rejected without mutating state.
		if _, err := dec.AddSymbol(0, make([]byte, symSize+1)); err == nil {
			t.Fatal("AddSymbol accepted a wrong-size symbol")
		}

		// Deliver mask-selected ESIs: bit b of mask byte i covers ESI
		// 8*i+b, walking from the systematic range into repair space.
		for i, m := range mask {
			for b := 0; b < 8; b++ {
				if m&(1<<b) == 0 {
					continue
				}
				esi := uint32(8*i + b)
				if _, err := dec.AddSymbol(esi, enc.Symbol(esi)); err != nil {
					t.Fatalf("AddSymbol(%d): %v", esi, err)
				}
			}
		}

		out, err := dec.Decode()
		switch {
		case err == nil:
			if len(out) != k {
				t.Fatalf("Decode returned %d symbols, want %d", len(out), k)
			}
			for i := range out {
				if !bytes.Equal(out[i], source[i]) {
					t.Fatalf("symbol %d corrupt: got %x want %x", i, out[i], source[i])
				}
			}
		case errors.Is(err, ErrNeedMoreSymbols):
			if dec.Ready() {
				t.Fatalf("ErrNeedMoreSymbols with %d >= %d symbols held", dec.Received(), k)
			}
		case errors.Is(err, ErrSingular):
			// Legal at low overhead; adding more symbols must still work.
		default:
			t.Fatalf("Decode: unexpected error %v", err)
		}

		// Adversarial pass: raw fuzz bytes as symbol payloads under
		// mask-derived ESIs. No invariant beyond "does not panic" and
		// symbol sizing still being enforced.
		adv, err := NewDecoder(k, symSize)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+symSize <= len(mask) && i < 64*symSize; i += symSize {
			esi := uint32(mask[i]) | uint32(i)<<8
			if _, err := adv.AddSymbol(esi, mask[i:i+symSize]); err != nil {
				t.Fatalf("adversarial AddSymbol(%d): %v", esi, err)
			}
		}
		if out, err := adv.Decode(); err == nil && len(out) != k {
			t.Fatalf("adversarial Decode returned %d symbols, want %d", len(out), k)
		}
	})
}

// FuzzSchedCache hammers the decode-schedule cache with a tiny
// capacity so eviction and re-recording churn constantly: a reused
// decoder with an injected 1-3 entry cache decodes a stream of
// mask-derived loss patterns, and every successful decode must still
// reproduce the source exactly while the cache never exceeds its
// capacity. This is the satellite fuzz target for the factorization-
// cache layer; the name is distinct from FuzzDecode so `go test
// -fuzz=FuzzDecode` keeps selecting exactly one target.
func FuzzSchedCache(f *testing.F) {
	f.Add(uint8(4), uint8(0), int64(1), []byte{0x01, 0x02, 0x03})
	f.Add(uint8(9), uint8(1), int64(2), []byte{0xff, 0x00, 0xff, 0x00})
	f.Add(uint8(15), uint8(2), int64(3), []byte{0x10, 0x20, 0x30, 0x40, 0x50})
	f.Add(uint8(7), uint8(0), int64(4), bytes.Repeat([]byte{0xab}, 16))
	f.Fuzz(func(t *testing.T, kb, capb uint8, seed int64, rounds []byte) {
		k := 4 + int(kb)%16
		const symSize = 8
		cache := newDecodeSchedCache(1 + int(capb)%3)

		state := uint64(seed)*0x9e3779b97f4a7c15 + 1
		next := func() byte {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return byte(state)
		}
		source := make([][]byte, k)
		for i := range source {
			source[i] = make([]byte, symSize)
			for j := range source[i] {
				source[i][j] = next()
			}
		}
		enc, err := NewEncoder(source)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(k, symSize)
		if err != nil {
			t.Fatal(err)
		}
		dec.cache = cache
		dec.forceFull = true // the cache serves the full-solver path

		if len(rounds) > 32 {
			rounds = rounds[:32]
		}
		for _, b := range rounds {
			dec.Reset()
			// Drop the source rows selected by b's bits (cyclically), and
			// cover each drop with a repair symbol.
			dropped := 0
			for i := 0; i < k; i++ {
				if b&(1<<(i%8)) != 0 {
					dropped++
					continue
				}
				if _, err := dec.AddSymbol(uint32(i), enc.Symbol(uint32(i))); err != nil {
					t.Fatal(err)
				}
			}
			for r := 0; r < dropped+1; r++ {
				esi := uint32(k + int(b)%5 + r) // shift the repair window too
				if _, err := dec.AddSymbol(esi, enc.Symbol(esi)); err != nil {
					t.Fatal(err)
				}
			}
			out, err := dec.Decode()
			switch {
			case err == nil:
				for i := range out {
					if !bytes.Equal(out[i], source[i]) {
						t.Fatalf("cache churn corrupted symbol %d: got %x want %x", i, out[i], source[i])
					}
				}
			case errors.Is(err, ErrSingular):
				// Legal at +1 overhead; the next round resets anyway.
			default:
				t.Fatalf("Decode: unexpected error %v", err)
			}
			if got, max := cache.len(), cache.cap; got > max {
				t.Fatalf("cache holds %d entries, cap %d", got, max)
			}
		}
	})
}
