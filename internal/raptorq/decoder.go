package raptorq

import (
	"errors"
	"fmt"

	"polyraptor/internal/gf256"
)

// ErrNeedMoreSymbols is returned by Decode when fewer than K encoding
// symbols have been received.
var ErrNeedMoreSymbols = errors.New("raptorq: need more symbols")

// Decoder reconstructs the K source symbols of one source block from
// any sufficiently large set of encoding symbols (source or repair, in
// any order, duplicates ignored).
//
// Typical usage:
//
//	d, _ := NewDecoder(k, symbolSize)
//	for sym := range arrivals {
//		d.AddSymbol(sym.ESI, sym.Data)
//		if d.Ready() {
//			if src, err := d.Decode(); err == nil { ... }
//		}
//	}
//
// Decode may be retried after adding more symbols if it fails with
// ErrSingular (probability ~1e-2 at zero overhead, falling roughly two
// decades per additional symbol).
type Decoder struct {
	p    Params
	t    int
	recv map[uint32][]byte
	// srcHave counts received symbols with esi < K (systematic fast path).
	srcHave int
	decoded [][]byte
}

// NewDecoder creates a decoder for a block of k source symbols of the
// given size.
func NewDecoder(k, symbolSize int) (*Decoder, error) {
	if symbolSize <= 0 {
		return nil, fmt.Errorf("raptorq: invalid symbol size %d", symbolSize)
	}
	p, err := NewParams(k)
	if err != nil {
		return nil, err
	}
	return &Decoder{p: p, t: symbolSize, recv: make(map[uint32][]byte, k+2)}, nil
}

// K returns the number of source symbols in the block.
func (d *Decoder) K() int { return d.p.K }

// SymbolSize returns the symbol size in bytes.
func (d *Decoder) SymbolSize() int { return d.t }

// AddSymbol stores encoding symbol esi. It returns true if the symbol
// was new (not a duplicate). The data is copied.
func (d *Decoder) AddSymbol(esi uint32, data []byte) (bool, error) {
	if len(data) != d.t {
		return false, fmt.Errorf("raptorq: symbol size %d, want %d", len(data), d.t)
	}
	if _, dup := d.recv[esi]; dup {
		return false, nil
	}
	cp := make([]byte, d.t)
	copy(cp, data)
	d.recv[esi] = cp
	if int(esi) < d.p.K {
		d.srcHave++
	}
	return true, nil
}

// Received returns the number of distinct encoding symbols held.
func (d *Decoder) Received() int { return len(d.recv) }

// SourceKnown returns how many source symbols arrived directly
// (esi < K) — these are available to the application immediately,
// which is the paper's zero-latency systematic path for lossless
// transfers.
func (d *Decoder) SourceKnown() int { return d.srcHave }

// Ready reports whether at least K distinct symbols are available, the
// minimum for a decode attempt.
func (d *Decoder) Ready() bool { return len(d.recv) >= d.p.K }

// Source returns the source symbol for esi if it was received directly
// or already decoded, else nil.
func (d *Decoder) Source(esi uint32) []byte {
	if d.decoded != nil {
		return d.decoded[esi]
	}
	if int(esi) < d.p.K {
		return d.recv[esi]
	}
	return nil
}

// Decode attempts to reconstruct all K source symbols. On success the
// result is cached and returned on subsequent calls. It returns
// ErrNeedMoreSymbols when fewer than K symbols are held and
// ErrSingular when the held set does not have full rank (add more
// symbols and retry).
func (d *Decoder) Decode() ([][]byte, error) {
	if d.decoded != nil {
		return d.decoded, nil
	}
	if d.srcHave == d.p.K {
		// Pure systematic delivery: no matrix work at all.
		out := make([][]byte, d.p.K)
		for i := 0; i < d.p.K; i++ {
			out[i] = d.recv[uint32(i)]
		}
		d.decoded = out
		return out, nil
	}
	if len(d.recv) < d.p.K {
		return nil, ErrNeedMoreSymbols
	}
	sol := newSolver(d.p.L, d.t)
	addConstraintRows(sol, d.p)
	var scratch []int32 // reused LT expansion; addBinaryRow copies it
	//polyvet:orderfree row insertion order cannot change the unique full-rank solution (only operation counts); sorting K+overhead ESIs per decode would tax the codec hot path
	for esi, sym := range d.recv {
		scratch = d.p.AppendLTIndices(scratch[:0], esi)
		sol.addBinaryRow(scratch, sym)
	}
	c, err := sol.solve()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, d.p.K)
	for i := 0; i < d.p.K; i++ {
		if sym, ok := d.recv[uint32(i)]; ok {
			out[i] = sym
			continue
		}
		buf := make([]byte, d.t)
		scratch = d.p.AppendLTIndices(scratch[:0], uint32(i))
		for _, col := range scratch {
			gf256.AddRow(buf, c[col])
		}
		out[i] = buf
	}
	d.decoded = out
	return out, nil
}
