package raptorq

import (
	"errors"
	"fmt"
	"slices"

	"polyraptor/internal/gf256"
)

// ErrNeedMoreSymbols is returned by Decode when fewer than K encoding
// symbols have been received.
var ErrNeedMoreSymbols = errors.New("raptorq: need more symbols")

// Decoder reconstructs the K source symbols of one source block from
// any sufficiently large set of encoding symbols (source or repair, in
// any order, duplicates ignored).
//
// Typical usage:
//
//	d, _ := NewDecoder(k, symbolSize)
//	for sym := range arrivals {
//		d.AddSymbol(sym.ESI, sym.Data)
//		if d.Ready() {
//			if src, err := d.Decode(); err == nil { ... }
//		}
//	}
//
// Decode may be retried after adding more symbols if it fails with
// ErrSingular (probability ~1e-2 at zero overhead, falling roughly two
// decades per additional symbol).
//
// Decoding is layered by how much work the received set actually
// requires:
//
//   - all K source symbols present: no matrix work at all;
//   - few missing sources (m <= partialMaxMissing): the partial-
//     systematic path back-substitutes repair equations against the
//     received sources and solves only an m x m system (see
//     partial.go);
//   - otherwise: the full inactivation solve, with the recorded
//     elimination cached per (K, received-ESI set) so repeated loss
//     patterns replay at kernel speed (see schedule.go).
//
// A Decoder can be reused for many blocks via Reset; in the steady
// state (same K, same symbol size, recurring loss shape) the whole
// AddSymbol/Decode cycle allocates nothing.
type Decoder struct {
	p    Params
	t    int
	recv map[uint32][]byte
	// srcHave counts received symbols with esi < K (systematic fast path).
	srcHave int
	decoded [][]byte

	// cache holds recorded decode eliminations keyed by the received
	// pattern; shared across decoders (tests may inject their own).
	cache *decodeSchedCache

	// Intake arena: received symbols are copied into symBuf chunks
	// instead of one allocation each. The chunk doubles when it fills,
	// so after one warm round Reset reuses a chunk big enough for the
	// whole block and intake allocates nothing. Grown chunks abandon
	// (never copy) the old buffer — symbols already handed to recv keep
	// their old backing.
	symBuf []byte
	symOff int

	// Reused solve scratch (see partial.go for the partial-path pieces).
	out       [][]byte
	outBuf    []byte
	esiBuf    []uint32
	ltScratch []int32
	slots     slotArena // symbol-width replay slots
	lanes     slotArena // lane-width replay slots (partial path)
	coefBuf   []byte
	rhsBuf    []byte
	eqRows    [][]byte
	eqSymRows [][]byte
	rowOfCol  []int
	missBuf   []uint32

	// Test hooks: force one decode path regardless of eligibility.
	// forcePartial also disables the fall-back to the full solver so
	// differential tests observe the partial path's own verdict.
	forceFull    bool
	forcePartial bool
}

// NewDecoder creates a decoder for a block of k source symbols of the
// given size.
func NewDecoder(k, symbolSize int) (*Decoder, error) {
	if symbolSize <= 0 {
		return nil, fmt.Errorf("raptorq: invalid symbol size %d", symbolSize)
	}
	p, err := NewParams(k)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		p:     p,
		t:     symbolSize,
		recv:  make(map[uint32][]byte, k+2),
		cache: defaultDecodeSchedCache,
	}, nil
}

// Reset returns the decoder to its empty state for a new block with
// the same (K, symbol size), retaining every internal buffer — the
// steady-state path allocates nothing. All symbol slices previously
// returned by Decode or Source are invalidated.
func (d *Decoder) Reset() {
	clear(d.recv)
	d.srcHave = 0
	d.decoded = nil
	d.symOff = 0
}

// K returns the number of source symbols in the block.
func (d *Decoder) K() int { return d.p.K }

// SymbolSize returns the symbol size in bytes.
func (d *Decoder) SymbolSize() int { return d.t }

// AddSymbol stores encoding symbol esi. It returns true if the symbol
// was new (not a duplicate). The data is copied.
func (d *Decoder) AddSymbol(esi uint32, data []byte) (bool, error) {
	if len(data) != d.t {
		return false, fmt.Errorf("raptorq: symbol size %d, want %d", len(data), d.t)
	}
	if _, dup := d.recv[esi]; dup {
		return false, nil
	}
	d.recv[esi] = d.storeSym(data)
	if int(esi) < d.p.K {
		d.srcHave++
	}
	return true, nil
}

// storeSym copies data into the intake arena and returns the stable
// copy.
//
//polyvet:noalloc per-symbol intake; the chunk-grow path is split out cold
func (d *Decoder) storeSym(data []byte) []byte {
	if d.symOff+d.t > len(d.symBuf) {
		d.growSymBuf()
	}
	out := d.symBuf[d.symOff : d.symOff+d.t : d.symOff+d.t]
	d.symOff += d.t
	copy(out, data)
	return out
}

// growSymBuf starts a fresh, larger intake chunk. The old chunk is
// abandoned, not copied: symbols already stored keep referencing it.
//
//go:noinline
func (d *Decoder) growSymBuf() {
	n := 2 * len(d.symBuf)
	if min := 64 * d.t; n < min {
		n = min
	}
	d.symBuf = make([]byte, n)
	d.symOff = 0
}

// Received returns the number of distinct encoding symbols held.
func (d *Decoder) Received() int { return len(d.recv) }

// SourceKnown returns how many source symbols arrived directly
// (esi < K) — these are available to the application immediately,
// which is the paper's zero-latency systematic path for lossless
// transfers.
func (d *Decoder) SourceKnown() int { return d.srcHave }

// Ready reports whether at least K distinct symbols are available, the
// minimum for a decode attempt.
func (d *Decoder) Ready() bool { return len(d.recv) >= d.p.K }

// Source returns the source symbol for esi if it was received directly
// or already decoded, else nil.
func (d *Decoder) Source(esi uint32) []byte {
	if d.decoded != nil {
		return d.decoded[esi]
	}
	if int(esi) < d.p.K {
		return d.recv[esi]
	}
	return nil
}

// Decode attempts to reconstruct all K source symbols. On success the
// result is cached and returned on subsequent calls (and invalidated
// by Reset). It returns ErrNeedMoreSymbols when fewer than K symbols
// are held and ErrSingular when the held set does not have full rank
// (add more symbols and retry).
func (d *Decoder) Decode() ([][]byte, error) {
	if d.decoded != nil {
		return d.decoded, nil
	}
	k := d.p.K
	out := d.outSlice()
	if d.srcHave == k {
		// Pure systematic delivery: no matrix work at all.
		for i := 0; i < k; i++ {
			out[i] = d.recv[uint32(i)]
		}
		d.decoded = out
		return out, nil
	}
	if len(d.recv) < k {
		return nil, ErrNeedMoreSymbols
	}
	m := k - d.srcHave
	if !d.forceFull && (d.forcePartial || m <= partialMaxMissing(k)) {
		err := d.decodePartial(out, m)
		if err == nil {
			d.decoded = out
			return out, nil
		}
		if d.forcePartial {
			return nil, err
		}
		// Fall through to the full solver: the partial path caps how
		// many repair rows it considers, so it can miss rank the full
		// system still has.
	}
	if err := d.decodeFull(out); err != nil {
		return nil, err
	}
	d.decoded = out
	return out, nil
}

// outSlice returns the reused K-wide result slice, cleared.
func (d *Decoder) outSlice() [][]byte {
	if cap(d.out) < d.p.K {
		d.out = make([][]byte, d.p.K)
	}
	d.out = d.out[:d.p.K]
	clear(d.out)
	return d.out
}

// sortedESIs collects the received ESIs in ascending order into the
// reused scratch slice.
func (d *Decoder) sortedESIs() []uint32 {
	esis := d.esiBuf[:0]
	//polyvet:orderfree collection order is erased by the sort below
	for esi := range d.recv {
		esis = append(esis, esi)
	}
	slices.Sort(esis)
	d.esiBuf = esis
	return esis
}

// decodeFull runs the full inactivation decode. The recorded
// elimination for this exact (K, ESI set) is looked up in the schedule
// cache; on a hit the solve is a pure replay over arena slots, on a
// miss the recording solver runs and the schedule is cached for next
// time. Slot layout for the decode system: S LDPC rows (zero RHS),
// the received symbols in ascending-ESI order, H HDPC rows (zero RHS).
func (d *Decoder) decodeFull(out [][]byte) error {
	esis := d.sortedESIs()
	k := d.p.K
	if sched := d.cache.get(k, esis); sched != nil {
		s, n := d.p.S, len(esis)
		syms := d.slots.slots(sched.nSlots, d.t)
		for i := 0; i < s; i++ {
			clear(syms[i])
		}
		for i, esi := range esis {
			copy(syms[s+i], d.recv[esi])
		}
		for i := s + n; i < sched.nSlots; i++ {
			clear(syms[i])
		}
		sched.replay(syms)
		d.fillFromSlots(out, syms, sched.outSlot)
		return nil
	}
	sol := newSolver(d.p.L, d.t)
	sol.record = true
	addConstraintRows(sol, d.p)
	scratch := d.ltScratch
	for _, esi := range esis {
		scratch = d.p.AppendLTIndices(scratch[:0], esi)
		sol.addBinaryRow(scratch, d.recv[esi])
	}
	d.ltScratch = scratch
	c, err := sol.solve()
	if err != nil {
		return err
	}
	d.cache.put(k, esis, sol.sched)
	d.fillFromCols(out, c)
	return nil
}

// fillFromSlots assembles the source symbols after a schedule replay:
// received sources come straight from the intake store, missing ones
// are regenerated by LT expansion over the intermediate slots into the
// reused output arena.
//
//polyvet:noalloc steady-state decode assembly over reused buffers
func (d *Decoder) fillFromSlots(out, syms [][]byte, outSlot []int32) {
	k := d.p.K
	buf := d.regenBuf(k - d.srcHave)
	off := 0
	scratch := d.ltScratch
	for i := 0; i < k; i++ {
		if sym, ok := d.recv[uint32(i)]; ok {
			out[i] = sym
			continue
		}
		dst := buf[off : off+d.t : off+d.t]
		off += d.t
		clear(dst)
		scratch = d.p.AppendLTIndices(scratch[:0], uint32(i))
		for _, col := range scratch {
			gf256.AddRow(dst, syms[outSlot[col]])
		}
		out[i] = dst
	}
	d.ltScratch = scratch
}

// fillFromCols is fillFromSlots for the recording-solver path, where
// the intermediates are addressed by column directly.
func (d *Decoder) fillFromCols(out [][]byte, c [][]byte) {
	k := d.p.K
	buf := d.regenBuf(k - d.srcHave)
	off := 0
	scratch := d.ltScratch
	for i := 0; i < k; i++ {
		if sym, ok := d.recv[uint32(i)]; ok {
			out[i] = sym
			continue
		}
		dst := buf[off : off+d.t : off+d.t]
		off += d.t
		scratch = d.p.AppendLTIndices(scratch[:0], uint32(i))
		for _, col := range scratch {
			gf256.AddRow(dst, c[col])
		}
		out[i] = dst
	}
	d.ltScratch = scratch
}

// regenBuf returns the reused backing store for m regenerated source
// symbols, zeroed. noinline keeps its grow allocation out of annotated
// callers under the compiler-verified gate.
//
//go:noinline
func (d *Decoder) regenBuf(m int) []byte {
	need := m * d.t
	if cap(d.outBuf) < need {
		d.outBuf = make([]byte, need)
	}
	d.outBuf = d.outBuf[:need]
	clear(d.outBuf)
	return d.outBuf
}
