package raptorq

// Tuple generation: every encoding symbol identifier (ESI) maps to an
// LT walk (d, a, b) over the W LT columns plus a short PI walk
// (d1, a1, b1) over the P permanently-inactive columns, following the
// construction of RFC 6330 §5.3.5.3 / RFC 5053 §5.4.4.3. The per-block
// seed incorporates the systematic index so the rank search in
// params.go can steer away from the rare singular constructions.

// tuple returns the full tuple for encoding symbol X.
func (p Params) tuple(x uint32) (d int, a, b uint32, d1 int, a1, b1 uint32) {
	qa := 53591 + 997*uint32(p.SIdx)
	qb := 10267 * (uint32(p.SIdx) + 1)
	y := qb + x*qa // wrapping arithmetic is intended
	v := rnd(y, 0, 1<<20)
	d = deg(v)
	if max := p.W - 2; d > max {
		d = max
	}
	if d < 1 {
		d = 1
	}
	a = 1 + rnd(y, 1, uint32(p.Wp-1))
	b = rnd(y, 2, uint32(p.Wp))
	// PI degree is 2, or 3 for high-degree LT parts (mirrors the RFC's
	// d1 selection, which gives denser PI coverage to the rows that are
	// most likely to participate in dependencies).
	if d < 4 {
		d1 = 2 + int(rnd(x, 3, 2))
	} else {
		d1 = 2
	}
	if d1 > p.P {
		d1 = p.P
	}
	a1 = 1 + rnd(x, 4, uint32(p.Pp-1))
	b1 = rnd(x, 5, uint32(p.Pp))
	return d, a, b, d1, a1, b1
}

// LTIndices returns the (distinct) intermediate-symbol column indices
// combined to form encoding symbol X: d indices in the LT region
// [0, W) followed by d1 indices in the PI region [W, L). The encoding
// symbol is the XOR of the intermediate symbols at these indices.
func (p Params) LTIndices(x uint32) []int32 {
	d, _, _, d1, _, _ := p.tuple(x)
	return p.AppendLTIndices(make([]int32, 0, d+d1), x)
}

// AppendLTIndices appends the LT indices of encoding symbol X to dst
// and returns the extended slice — the allocation-free form of
// LTIndices for hot paths that reuse a scratch slice.
//
//polyvet:noalloc per-symbol tuple expansion; callers reuse a scratch slice
//polyvet:nobce index-generation loops append only; nothing to bounds-check per element
func (p Params) AppendLTIndices(dst []int32, x uint32) []int32 {
	d, a, b, d1, a1, b1 := p.tuple(x)
	for n := 0; n < d; {
		if b < uint32(p.W) {
			dst = append(dst, int32(b))
			n++
		}
		b = (b + a) % uint32(p.Wp)
	}
	for n := 0; n < d1; {
		if b1 < uint32(p.P) {
			dst = append(dst, int32(p.W)+int32(b1))
			n++
		}
		b1 = (b1 + a1) % uint32(p.Pp)
	}
	return dst
}

// Degree returns the LT degree of encoding symbol X (excluding the PI
// neighbours) — exposed for tests and simulator cost models.
func (p Params) Degree(x uint32) int {
	d, _, _, _, _, _ := p.tuple(x)
	return d
}
