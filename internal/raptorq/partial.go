package raptorq

import (
	"polyraptor/internal/gf256"
)

// Partial-systematic decoding: when most source symbols arrive intact,
// paying a full L x L inactivation solve to recover a handful of
// missing rows wastes almost all of its work — the observation SCDP
// builds its datacenter transport on. This path reduces the decode to
// an m x m dense system over only the m missing source symbols.
//
// The precode solve is linear and byte-lane-wise: every recorded
// schedule op (XOR, GF(256) multiply-add, scale) maps byte position b
// of its inputs to byte position b of its output. Writing the
// intermediate symbols as a function of the source block therefore
// splits cleanly:
//
//	C[col] = C0[col] + sum_j gamma[col][j] * x_j
//
// where x_j is the j-th *missing* source symbol, C0 is the precode
// replay with zeros in the missing rows (computed at full symbol
// width), and gamma[col][j] is a GF(256) scalar — recovered for all
// columns at once by replaying the same schedule over m-byte "lanes"
// seeded with unit vectors e_j in the missing rows.
//
// Each received repair symbol with ESI e then yields one equation over
// the x_j:
//
//	sum_j a_e[j] * x_j = recv[e] - sum_{col in LT(e)} C0[col]
//	a_e[j] = sum_{col in LT(e)} gamma[col][j]
//
// Gauss-Jordan on the resulting r x m system (r = m plus a few spare
// repair rows) recovers the missing sources directly — no intermediate
// symbols, no regeneration step. If the capped repair subset happens
// to be rank-deficient, Decode falls back to the full solver, which
// sees every received row.
//
// Byte-identity with the full solver: both paths compute the unique
// exact solution of a full-rank linear system whose solution is the
// original source block, so agreement is exact, not approximate — the
// differential tests assert it byte-for-byte.

// partialExtraRows is how many repair equations beyond m the partial
// path stacks onto the dense system. The reduced system inherits full
// rank from the received set with overwhelming probability; a few
// spare rows make the rank-deficient fall-back rare instead of
// common at m == repair count.
const partialExtraRows = 8

// partialMaxMissing bounds how many missing source rows the partial
// path will take on. Beyond ~K/8 the m x m dense solve and the lane
// replay stop being cheaper than a cached full solve; the absolute cap
// bounds the lane arena for huge blocks.
func partialMaxMissing(k int) int {
	m := k / 8
	if m < 1 {
		m = 1
	}
	if m > 128 {
		m = 128
	}
	return m
}

// decodePartial recovers the m missing source symbols via the reduced
// system and fills out. It requires len(d.recv) >= K (checked by
// Decode). Everything it touches is reused scratch: in the steady
// state it allocates nothing.
func (d *Decoder) decodePartial(out [][]byte, m int) error {
	k := d.p.K
	sched, err := precodeSchedule(d.p)
	if err != nil {
		return err
	}

	// Missing source rows, ascending.
	miss := d.missBuf[:0]
	for i := 0; i < k; i++ {
		if _, ok := d.recv[uint32(i)]; !ok {
			miss = append(miss, uint32(i))
		}
	}
	d.missBuf = miss

	// Repair rows: the sorted received set's tail (every ESI >= K).
	esis := d.sortedESIs()
	repairs := esis[d.srcHave:]
	if len(repairs) > m+partialExtraRows {
		repairs = repairs[:m+partialExtraRows]
	}
	if len(repairs) < m {
		return ErrSingular
	}

	s := d.p.S
	nSlots := sched.nSlots

	// Lane replay: unit byte-lanes in the missing rows expose the
	// GF(256) coefficient of every intermediate on every missing
	// source.
	lanes := d.lanes.slots(nSlots, m)
	for i := range lanes {
		clear(lanes[i])
	}
	for j, esi := range miss {
		lanes[s+int(esi)][j] = 1
	}
	sched.replay(lanes)

	// Base replay: the known part C0 of every intermediate, from the
	// received sources with zeros in the missing rows.
	base := d.slots.slots(nSlots, d.t)
	for i := 0; i < s; i++ {
		clear(base[i])
	}
	for i := 0; i < k; i++ {
		if sym, ok := d.recv[uint32(i)]; ok {
			copy(base[s+i], sym)
		} else {
			clear(base[s+i])
		}
	}
	for i := s + k; i < nSlots; i++ {
		clear(base[i])
	}
	sched.replay(base)

	// Assemble the reduced r x m system.
	r := len(repairs)
	if cap(d.coefBuf) < r*m {
		d.coefBuf = make([]byte, r*m)
	}
	d.coefBuf = d.coefBuf[:r*m]
	if cap(d.rhsBuf) < r*d.t {
		d.rhsBuf = make([]byte, r*d.t)
	}
	d.rhsBuf = d.rhsBuf[:r*d.t]
	eq := d.eqRows[:0]
	eqSym := d.eqSymRows[:0]
	scratch := d.ltScratch
	for i, esi := range repairs {
		coef := d.coefBuf[i*m : (i+1)*m : (i+1)*m]
		clear(coef)
		rhs := d.rhsBuf[i*d.t : (i+1)*d.t : (i+1)*d.t]
		copy(rhs, d.recv[esi])
		scratch = d.p.AppendLTIndices(scratch[:0], esi)
		for _, col := range scratch {
			slot := sched.outSlot[col]
			gf256.AddRow(coef, lanes[slot])
			gf256.AddRow(rhs, base[slot])
		}
		eq = append(eq, coef)
		eqSym = append(eqSym, rhs)
	}
	d.ltScratch = scratch
	d.eqRows, d.eqSymRows = eq, eqSym

	if cap(d.rowOfCol) < m {
		d.rowOfCol = make([]int, m)
	}
	rowOfCol := d.rowOfCol[:m]
	if err := gaussJordanScratch(eq, eqSym, m, rowOfCol); err != nil {
		return err
	}

	for i := 0; i < k; i++ {
		if sym, ok := d.recv[uint32(i)]; ok {
			out[i] = sym
		}
	}
	for j, esi := range miss {
		out[esi] = eqSym[rowOfCol[j]]
	}
	return nil
}
