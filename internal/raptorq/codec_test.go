package raptorq

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSymbols(rng *rand.Rand, k, t int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, t)
		rng.Read(out[i])
	}
	return out
}

func TestEncoderSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 2, 5, 13, 64, 200} {
		src := randSymbols(rng, k, 64)
		enc, err := NewEncoder(src)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(enc.Symbol(uint32(i)), src[i]) {
				t.Fatalf("K=%d: symbol %d is not systematic", k, i)
			}
		}
	}
}

func TestEncoderRepairConsistentWithLT(t *testing.T) {
	// A repair symbol must equal the XOR of the intermediate symbols
	// selected by LTIndices — i.e. AppendSymbol and the systematic
	// property must come from the same construction.
	rng := rand.New(rand.NewSource(2))
	src := randSymbols(rng, 32, 16)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	for esi := uint32(32); esi < 64; esi++ {
		want := make([]byte, 16)
		for _, c := range enc.p.LTIndices(esi) {
			for i := range want {
				want[i] ^= enc.c[c][i]
			}
		}
		if !bytes.Equal(enc.Symbol(esi), want) {
			t.Fatalf("repair esi %d mismatch", esi)
		}
	}
}

func TestEncoderInputValidation(t *testing.T) {
	if _, err := NewEncoder(nil); err == nil {
		t.Fatal("NewEncoder(nil) succeeded")
	}
	if _, err := NewEncoder([][]byte{{}}); err == nil {
		t.Fatal("NewEncoder with empty symbol succeeded")
	}
	if _, err := NewEncoder([][]byte{{1, 2}, {1}}); err == nil {
		t.Fatal("NewEncoder with ragged symbols succeeded")
	}
}

func TestDecodeAllSourceSymbols(t *testing.T) {
	// Systematic fast path: feeding exactly the K source symbols must
	// decode with no matrix work and return identical data.
	rng := rand.New(rand.NewSource(3))
	src := randSymbols(rng, 50, 32)
	dec, err := NewDecoder(50, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range src {
		added, err := dec.AddSymbol(uint32(i), s)
		if err != nil || !added {
			t.Fatalf("AddSymbol(%d): added=%v err=%v", i, added, err)
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source symbol %d corrupted", i)
		}
	}
}

func TestDecodeRepairOnly(t *testing.T) {
	// Decode using only repair symbols (no source symbols at all).
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 7, 40} {
		src := randSymbols(rng, k, 24)
		enc, err := NewEncoder(src)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(k, 24)
		if err != nil {
			t.Fatal(err)
		}
		esi := uint32(k)
		for !dec.Ready() || !tryDecode(dec) {
			if _, err := dec.AddSymbol(esi, enc.Symbol(esi)); err != nil {
				t.Fatal(err)
			}
			esi++
			if esi > uint32(k+50) {
				t.Fatalf("K=%d: decode did not converge after %d repair symbols", k, esi-uint32(k))
			}
		}
		got, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("K=%d: symbol %d wrong after repair-only decode", k, i)
			}
		}
	}
}

func tryDecode(d *Decoder) bool {
	_, err := d.Decode()
	return err == nil
}

func TestDecodeMixedLoss(t *testing.T) {
	// Drop a random subset of source symbols and replace them with
	// repair symbols — the common Polyraptor case.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := 20 + rng.Intn(100)
		tSize := 8 + rng.Intn(64)
		src := randSymbols(rng, k, tSize)
		enc, err := NewEncoder(src)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(k, tSize)
		if err != nil {
			t.Fatal(err)
		}
		lost := 0
		for i := 0; i < k; i++ {
			if rng.Float64() < 0.3 {
				lost++
				continue
			}
			dec.AddSymbol(uint32(i), src[i])
		}
		// Feed repair symbols until decode succeeds (allow a couple of
		// extra for the rare rank shortfall).
		esi := uint32(k)
		for i := 0; i < lost+5; i++ {
			dec.AddSymbol(esi, enc.Symbol(esi))
			esi++
			if dec.Ready() && tryDecode(dec) {
				break
			}
		}
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("trial %d (K=%d, lost=%d): %v", trial, k, lost, err)
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				t.Fatalf("trial %d: symbol %d wrong", trial, i)
			}
		}
	}
}

func TestDecoderDuplicateSymbolsIgnored(t *testing.T) {
	src := randSymbols(rand.New(rand.NewSource(6)), 10, 8)
	dec, _ := NewDecoder(10, 8)
	added, _ := dec.AddSymbol(3, src[3])
	if !added {
		t.Fatal("first add not registered")
	}
	added, _ = dec.AddSymbol(3, src[3])
	if added {
		t.Fatal("duplicate add registered as new")
	}
	if dec.Received() != 1 {
		t.Fatalf("Received = %d, want 1", dec.Received())
	}
}

func TestDecoderRejectsWrongSize(t *testing.T) {
	dec, _ := NewDecoder(10, 8)
	if _, err := dec.AddSymbol(0, make([]byte, 9)); err == nil {
		t.Fatal("wrong-size symbol accepted")
	}
}

func TestDecodeNeedMoreSymbols(t *testing.T) {
	dec, _ := NewDecoder(10, 8)
	dec.AddSymbol(0, make([]byte, 8))
	if _, err := dec.Decode(); err != ErrNeedMoreSymbols {
		t.Fatalf("err = %v, want ErrNeedMoreSymbols", err)
	}
}

func TestDecoderSourceKnownCount(t *testing.T) {
	src := randSymbols(rand.New(rand.NewSource(7)), 10, 8)
	enc, _ := NewEncoder(src)
	dec, _ := NewDecoder(10, 8)
	dec.AddSymbol(0, src[0])
	dec.AddSymbol(4, src[4])
	dec.AddSymbol(12, enc.Symbol(12)) // repair
	if dec.SourceKnown() != 2 {
		t.Fatalf("SourceKnown = %d, want 2", dec.SourceKnown())
	}
	if dec.Received() != 3 {
		t.Fatalf("Received = %d, want 3", dec.Received())
	}
	if got := dec.Source(4); !bytes.Equal(got, src[4]) {
		t.Fatal("Source(4) does not return the received symbol")
	}
	if dec.Source(1) != nil {
		t.Fatal("Source(1) should be nil before decode")
	}
}

// Property-based round trip across random K, T, loss patterns and
// repair overhead.
func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(60)
		tSize := 1 + r.Intn(48)
		src := randSymbols(rng, k, tSize)
		enc, err := NewEncoder(src)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(k, tSize)
		if err != nil {
			return false
		}
		// Random arrival order of source + 10 repair symbols, with each
		// symbol surviving with p=0.7; keep feeding until decoded.
		esis := r.Perm(k + 10)
		for _, e := range esis {
			if r.Float64() < 0.3 {
				continue
			}
			dec.AddSymbol(uint32(e), enc.Symbol(uint32(e)))
		}
		extra := uint32(k + 10)
		for !(dec.Ready() && tryDecode(dec)) {
			dec.AddSymbol(extra, enc.Symbol(extra))
			extra++
			if extra > uint32(k+200) {
				return false
			}
		}
		got, err := dec.Decode()
		if err != nil {
			return false
		}
		for i := range src {
			if !bytes.Equal(got[i], src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestStatisticallyUniqueAcrossESIRanges validates the multi-source
// claim: symbols drawn from disjoint ESI ranges by uncoordinated
// senders are all useful (jointly decodable) because they are distinct
// equations of the same code.
func TestStatisticallyUniqueAcrossESIRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k := 60
	src := randSymbols(rng, k, 16)
	enc, err := NewEncoder(src)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := NewDecoder(k, 16)
	// Three "senders", each contributing ~k/3+3 repair symbols from a
	// disjoint ESI range (the paper's partitioning scheme).
	n := 3
	per := k/n + 3
	for s := 0; s < n; s++ {
		for i := 0; i < per; i++ {
			esi := uint32(k + s + n*i) // ESIs ≡ s (mod n)
			dec.AddSymbol(esi, enc.Symbol(esi))
		}
	}
	if !dec.Ready() {
		t.Fatalf("only %d symbols for K=%d", dec.Received(), k)
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatalf("multi-range decode failed: %v", err)
	}
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("symbol %d wrong", i)
		}
	}
}

func TestAppendSymbolNoRealloc(t *testing.T) {
	src := randSymbols(rand.New(rand.NewSource(10)), 16, 32)
	enc, _ := NewEncoder(src)
	buf := make([]byte, 0, 32)
	out := enc.AppendSymbol(buf, 20)
	if len(out) != 32 {
		t.Fatalf("AppendSymbol length %d, want 32", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendSymbol reallocated despite sufficient capacity")
	}
}
