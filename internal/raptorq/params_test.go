package raptorq

import "testing"

func TestNewParamsBasicInvariants(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 10, 17, 50, 100, 317, 1000, 2048} {
		p, err := NewParams(k)
		if err != nil {
			t.Fatalf("NewParams(%d): %v", k, err)
		}
		if p.K != k {
			t.Fatalf("K = %d, want %d", p.K, k)
		}
		if !isPrime(p.S) {
			t.Fatalf("K=%d: S=%d is not prime", k, p.S)
		}
		if p.S < 3 {
			t.Fatalf("K=%d: S=%d too small for the LDPC circulant", k, p.S)
		}
		if choose(p.H, (p.H+1)/2) < int64(p.K+p.S) {
			t.Fatalf("K=%d: H=%d violates choose(H,ceil(H/2)) >= K+S", k, p.H)
		}
		if p.L != p.K+p.S+p.H {
			t.Fatalf("K=%d: L=%d != K+S+H=%d", k, p.L, p.K+p.S+p.H)
		}
		if p.W+p.P != p.L {
			t.Fatalf("K=%d: W+P=%d != L=%d", k, p.W+p.P, p.L)
		}
		if p.B() < 1 {
			t.Fatalf("K=%d: B=%d, need at least one free LT column", k, p.B())
		}
		if p.P < p.H {
			t.Fatalf("K=%d: P=%d < H=%d, PI region must hold the HDPC symbols", k, p.P, p.H)
		}
		if !isPrime(p.Wp) || p.Wp < p.W || (isPrime(p.Wp-1) && p.Wp-1 >= p.W) {
			t.Fatalf("K=%d: Wp=%d not smallest prime >= W=%d", k, p.Wp, p.W)
		}
		if !isPrime(p.Pp) || p.Pp < p.P || (isPrime(p.Pp-1) && p.Pp-1 >= p.P) {
			t.Fatalf("K=%d: Pp=%d not smallest prime >= P=%d", k, p.Pp, p.P)
		}
	}
}

func TestNewParamsRejectsBadK(t *testing.T) {
	for _, k := range []int{0, -1, MaxK + 1} {
		if _, err := NewParams(k); err == nil {
			t.Fatalf("NewParams(%d) succeeded, want error", k)
		}
	}
}

func TestParamsMonotoneOverhead(t *testing.T) {
	// The precode overhead (S+H) must grow sublinearly: for K=1000 it
	// should be well under 10% of K.
	p, err := NewParams(1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.S+p.H > 100 {
		t.Fatalf("precode overhead S+H = %d too large for K=1000", p.S+p.H)
	}
}

func TestSystematicIndexDeterministic(t *testing.T) {
	a, err := NewParams(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParams(64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("NewParams not deterministic: %+v vs %+v", a, b)
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		i, j           int
		il, is, jl, js int
	}{
		{10, 3, 4, 3, 1, 2},
		{9, 3, 3, 3, 0, 3},
		{1, 1, 1, 1, 0, 1},
		{7, 2, 4, 3, 1, 1},
	}
	for _, c := range cases {
		il, is, jl, js := Partition(c.i, c.j)
		if il != c.il || is != c.is || jl != c.jl || js != c.js {
			t.Fatalf("Partition(%d,%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				c.i, c.j, il, is, jl, js, c.il, c.is, c.jl, c.js)
		}
		if jl*il+js*is != c.i {
			t.Fatalf("Partition(%d,%d) does not cover all items", c.i, c.j)
		}
	}
}

func TestPrimeHelpers(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 101, 997}
	for _, p := range primes {
		if !isPrime(p) {
			t.Fatalf("isPrime(%d) = false", p)
		}
	}
	composites := []int{0, 1, 4, 9, 100, 999}
	for _, c := range composites {
		if isPrime(c) {
			t.Fatalf("isPrime(%d) = true", c)
		}
	}
	if nextPrime(8) != 11 {
		t.Fatalf("nextPrime(8) = %d, want 11", nextPrime(8))
	}
	if nextPrime(11) != 11 {
		t.Fatalf("nextPrime(11) = %d, want 11", nextPrime(11))
	}
}

func TestChoose(t *testing.T) {
	if choose(5, 2) != 10 {
		t.Fatalf("choose(5,2) = %d", choose(5, 2))
	}
	if choose(10, 5) != 252 {
		t.Fatalf("choose(10,5) = %d", choose(10, 5))
	}
	if choose(4, 0) != 1 || choose(4, 4) != 1 {
		t.Fatal("choose boundary cases wrong")
	}
	if choose(3, 5) != 0 {
		t.Fatal("choose(3,5) should be 0")
	}
}
