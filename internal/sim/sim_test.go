package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Microsecond, func() { order = append(order, 3) })
	e.At(10*time.Microsecond, func() { order = append(order, 1) })
	e.At(20*time.Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(5*time.Microsecond, func() {
		e.After(7*time.Microsecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 12*time.Microsecond {
		t.Fatalf("After fired at %v, want 12µs", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Microsecond, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(time.Microsecond, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and post-run cancel are no-ops.
	tm.Cancel()
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(time.Microsecond, func() { order = append(order, 1) })
	tm := e.At(2*time.Microsecond, func() { order = append(order, 2) })
	e.At(3*time.Microsecond, func() { order = append(order, 3) })
	tm.Cancel()
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*time.Microsecond, func() { fired++ })
	e.At(20*time.Microsecond, func() { fired++ })
	e.At(30*time.Microsecond, func() { fired++ })
	e.RunUntil(20 * time.Microsecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20*time.Microsecond {
		t.Fatalf("Now = %v, want 20µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired = %d after Run, want 3", fired)
	}
}

func TestRunForAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Millisecond)
	if e.Now() != time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			e.After(time.Microsecond, recur)
		}
	}
	e.After(time.Microsecond, recur)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

func TestRNGDeterminismAndIndependence(t *testing.T) {
	a1 := RNG(42, "arrivals")
	a2 := RNG(42, "arrivals")
	b := RNG(42, "ecmp")
	c := RNG(43, "arrivals")
	same, diffStream, diffSeed := 0, 0, 0
	for i := 0; i < 100; i++ {
		x := a1.Uint64()
		if x == a2.Uint64() {
			same++
		}
		if x == b.Uint64() {
			diffStream++
		}
		if x == c.Uint64() {
			diffSeed++
		}
	}
	if same != 100 {
		t.Fatal("same seed+stream must reproduce identical sequences")
	}
	if diffStream > 2 || diffSeed > 2 {
		t.Fatal("different streams/seeds must be independent")
	}
}
