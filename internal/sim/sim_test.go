package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Microsecond, func() { order = append(order, 3) })
	e.At(10*time.Microsecond, func() { order = append(order, 1) })
	e.At(20*time.Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Microsecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(5*time.Microsecond, func() {
		e.After(7*time.Microsecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 12*time.Microsecond {
		t.Fatalf("After fired at %v, want 12µs", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Microsecond, func() {})
	})
	e.Run()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.At(time.Microsecond, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and post-run cancel are no-ops.
	tm.Cancel()
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(time.Microsecond, func() { order = append(order, 1) })
	tm := e.At(2*time.Microsecond, func() { order = append(order, 2) })
	e.At(3*time.Microsecond, func() { order = append(order, 3) })
	tm.Cancel()
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*time.Microsecond, func() { fired++ })
	e.At(20*time.Microsecond, func() { fired++ })
	e.At(30*time.Microsecond, func() { fired++ })
	e.RunUntil(20 * time.Microsecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20*time.Microsecond {
		t.Fatalf("Now = %v, want 20µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired = %d after Run, want 3", fired)
	}
}

func TestRunForAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine()
	e.RunFor(time.Millisecond)
	if e.Now() != time.Millisecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			e.After(time.Microsecond, recur)
		}
	}
	e.After(time.Microsecond, recur)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

// Regression (ISSUE 3): RunUntil must never execute events past the
// deadline. The old engine left cancelled events in the heap, so a
// cancelled head with at <= deadline made Step skip it and fire the
// next live event unconditionally — even when that event was later
// than the deadline.
func TestRunUntilRespectsDeadlineWithCancelledHead(t *testing.T) {
	e := NewEngine()
	tm := e.At(10*time.Microsecond, func() { t.Error("cancelled event fired") })
	fired := false
	e.At(30*time.Microsecond, func() { fired = true })
	tm.Cancel()
	e.RunUntil(20 * time.Microsecond)
	if fired {
		t.Fatal("RunUntil executed an event past the deadline")
	}
	if e.Now() != 20*time.Microsecond {
		t.Fatalf("Now = %v, want 20µs", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if !fired {
		t.Fatal("later event never fired")
	}
}

// Regression (ISSUE 3): cancelling an already-fired timer must leave no
// residual engine state. The old engine inserted a cancelled-map entry
// that was never reaped — a permanent per-cancel leak in long
// simulations.
func TestCancelAfterFireLeavesNoResidualState(t *testing.T) {
	e := NewEngine()
	var timers []Timer
	for i := 0; i < 1000; i++ {
		timers = append(timers, e.After(Time(i), func() {}))
	}
	e.Run()
	for _, tm := range timers {
		tm.Cancel()
		tm.Cancel() // double-cancel after fire is also a no-op
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	if live := len(e.slots) - len(e.free); live != 0 {
		t.Fatalf("%d slots still held after cancel-after-fire", live)
	}
}

// A stale Timer handle whose slot has been reused by a newer event must
// not cancel that newer event: the generation tag protects it.
func TestStaleCancelDoesNotKillReusedSlot(t *testing.T) {
	e := NewEngine()
	old := e.At(time.Microsecond, func() {})
	e.Run() // fires; slot returns to the free list
	fired := false
	e.After(time.Microsecond, func() { fired = true }) // reuses the slot
	old.Cancel()                                       // stale handle
	e.Run()
	if !fired {
		t.Fatal("stale Cancel removed a reused slot's event")
	}
}

func TestTimerActive(t *testing.T) {
	var zero Timer
	if zero.Active() {
		t.Fatal("zero Timer reports active")
	}
	e := NewEngine()
	tm := e.At(time.Microsecond, func() {})
	if !tm.Active() {
		t.Fatal("scheduled timer not active")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("cancelled timer still active")
	}
	tm2 := e.At(time.Microsecond, func() {})
	e.Run()
	if tm2.Active() {
		t.Fatal("fired timer still active")
	}
}

// refModel is a brute-force reference event queue: a flat slice scanned
// linearly, with the same (at, seq) ordering contract as the engine.
type refModel struct {
	now    Time
	seq    uint64
	events []refEvent
}

type refEvent struct {
	at   Time
	seq  uint64
	id   int
	dead bool
}

func (m *refModel) schedule(at Time, id int) int {
	m.seq++
	m.events = append(m.events, refEvent{at: at, seq: m.seq, id: id})
	return len(m.events) - 1
}

func (m *refModel) cancel(idx int) { m.events[idx].dead = true }

// runUntil fires all live events with at <= deadline in (at, seq)
// order, appending fired ids to log, and returns the updated log.
func (m *refModel) runUntil(deadline Time, log []int) []int {
	for {
		best := -1
		for i, ev := range m.events {
			if ev.dead || ev.at > deadline {
				continue
			}
			if best < 0 || ev.at < m.events[best].at ||
				(ev.at == m.events[best].at && ev.seq < m.events[best].seq) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		m.now = m.events[best].at
		log = append(log, m.events[best].id)
		m.events[best].dead = true
	}
	if m.now < deadline {
		m.now = deadline
	}
	return log
}

// TestRandomizedAgainstReferenceModel drives the engine and a
// brute-force model through the same random schedule/cancel/run-until
// trace and requires identical firing order, clock and live-event
// count at every step. Fixed seeds keep failures reproducible.
func TestRandomizedAgainstReferenceModel(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := RNG(seed, "sim-stress")
		e := NewEngine()
		m := &refModel{}
		var got, want []int
		type live struct {
			tm  Timer
			ref int
		}
		var timers []live // includes fired ones: cancel-after-fire is exercised too
		nextID := 0
		for op := 0; op < 4000; op++ {
			switch r := rng.Float64(); {
			case r < 0.55:
				at := e.Now() + Time(rng.Intn(1000))
				id := nextID
				nextID++
				tm := e.At(at, func() { got = append(got, id) })
				ref := m.schedule(at, id)
				timers = append(timers, live{tm, ref})
			case r < 0.80 && len(timers) > 0:
				i := rng.Intn(len(timers))
				timers[i].tm.Cancel()
				// Mirror in the model only if the event hasn't fired;
				// Cancel after fire must be a no-op in both.
				if !m.events[timers[i].ref].dead {
					m.cancel(timers[i].ref)
				}
			default:
				deadline := e.Now() + Time(rng.Intn(500))
				e.RunUntil(deadline)
				want = m.runUntil(deadline, want)
			}
			if e.Now() != m.now {
				t.Fatalf("seed %d op %d: clock %v, model %v", seed, op, e.Now(), m.now)
			}
		}
		e.Run()
		want = m.runUntil(1<<62, want)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, model fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at %d: engine %d, model %d", seed, i, got[i], want[i])
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("seed %d: Pending = %d after Run", seed, e.Pending())
		}
		if liveSlots := len(e.slots) - len(e.free); liveSlots != 0 {
			t.Fatalf("seed %d: %d slots leaked", seed, liveSlots)
		}
	}
}

func TestRNGDeterminismAndIndependence(t *testing.T) {
	a1 := RNG(42, "arrivals")
	a2 := RNG(42, "arrivals")
	b := RNG(42, "ecmp")
	c := RNG(43, "arrivals")
	same, diffStream, diffSeed := 0, 0, 0
	for i := 0; i < 100; i++ {
		x := a1.Uint64()
		if x == a2.Uint64() {
			same++
		}
		if x == b.Uint64() {
			diffStream++
		}
		if x == c.Uint64() {
			diffSeed++
		}
	}
	if same != 100 {
		t.Fatal("same seed+stream must reproduce identical sequences")
	}
	if diffStream > 2 || diffSeed > 2 {
		t.Fatal("different streams/seeds must be independent")
	}
}
