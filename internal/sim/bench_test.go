package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun measures raw event throughput: a self-refilling
// queue of depth 1024, each fired event scheduling its replacement —
// the steady-state shape of a packet-level simulation.
func BenchmarkScheduleRun(b *testing.B) {
	const depth = 1024
	e := NewEngine()
	var refill func()
	refill = func() { e.After(time.Microsecond, refill) }
	for i := 0; i < depth; i++ {
		e.After(time.Duration(i), refill)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkScheduleCancel measures the timer churn pattern of the TCP
// and Polyraptor endpoints: schedule a timeout, then cancel it before
// it fires (the common case — RTOs almost never expire).
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	// Keep one live event so the queue never empties.
	var keepalive func()
	keepalive = func() { e.After(time.Microsecond, keepalive) }
	e.After(time.Microsecond, keepalive)
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.After(time.Millisecond, nop)
		tm.Cancel()
		if i%1024 == 0 {
			e.Step()
		}
	}
}
