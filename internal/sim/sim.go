// Package sim provides a deterministic discrete-event simulation
// engine: a monotonic virtual clock, an indexed 4-ary heap event queue
// with stable FIFO ordering for simultaneous events, and seedable RNG
// streams. All of Polyraptor's protocol evaluation (the network
// simulator, the TCP baseline and the experiment harness) runs on this
// engine; determinism per seed is what makes the paper's
// five-seed error bars reproducible.
//
// The queue holds events by value in a flat slice (no per-event heap
// allocation in steady state) and timers are generation-tagged handles
// into a slot table, so Cancel removes the event from the heap in
// O(log n) with no tombstones: the head of the queue is always a live
// event, and cancelling an already-fired timer touches nothing.
package sim

import (
	"math/rand"
	"time"
)

// Time is simulated time. It aliases time.Duration (nanosecond ticks)
// so durations, rates and pretty-printing come for free.
type Time = time.Duration

// event is a scheduled callback, stored by value in the heap.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among simultaneous events
	fn   func()
	slot int32 // index into Engine.slots
}

// slot maps a timer handle to its heap position. gen disambiguates
// reuses of the same slot: a Timer carries the generation it was issued
// with, and Cancel is a no-op unless the generations still match.
type slot struct {
	pos int32 // index into Engine.queue, or -1 when not queued
	gen uint32
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are deterministic single-goroutine
// programs by design.
type Engine struct {
	now       Time
	queue     []event // indexed 4-ary min-heap ordered by (at, seq)
	seq       uint64
	slots     []slot
	free      []int32 // free slot indices
	processed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of live events still queued. Cancelled
// events are removed immediately, so this is exact.
func (e *Engine) Pending() int { return len(e.queue) }

// Timer identifies a scheduled event for cancellation. The zero Timer
// is valid and Cancel on it is a no-op.
type Timer struct {
	engine *Engine
	slot   int32
	gen    uint32
}

// At schedules fn at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
//
//polyvet:noalloc event scheduling runs per packet; slot/queue reuse keeps it amortized alloc-free
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	var s int32
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, slot{})
		s = int32(len(e.slots) - 1)
	}
	sl := &e.slots[s]
	sl.gen++
	sl.pos = int32(len(e.queue))
	e.queue = append(e.queue, event{at: t, seq: e.seq, fn: fn, slot: s})
	e.siftUp(len(e.queue) - 1)
	return Timer{engine: e, slot: s, gen: sl.gen}
}

// After schedules fn after delay d.
//
//polyvet:noalloc thin wrapper on At; must add no allocation of its own
func (e *Engine) After(d Time, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing, removing it from the
// queue in O(log n). Cancelling an already-fired or already-cancelled
// timer is a no-op and leaves no residual state: the generation tag
// stops a stale handle from touching a reused slot.
//
//polyvet:noalloc timeout cancellation runs per delivered packet
func (t Timer) Cancel() {
	e := t.engine
	if e == nil {
		return
	}
	sl := &e.slots[t.slot]
	if sl.gen != t.gen || sl.pos < 0 {
		return
	}
	e.removeAt(int(sl.pos))
}

// Active reports whether the timer is still queued (scheduled, not yet
// fired or cancelled).
//
//polyvet:inline two-field check on the scheduler fast path
func (t Timer) Active() bool {
	if t.engine == nil {
		return false
	}
	sl := &t.engine.slots[t.slot]
	return sl.gen == t.gen && sl.pos >= 0
}

// removeAt deletes the event at heap index i, releasing its slot.
//
//polyvet:noalloc runs on every event fire and cancel; free-list reuse keeps it alloc-free
func (e *Engine) removeAt(i int) {
	s := e.queue[i].slot
	e.slots[s].pos = -1
	e.free = append(e.free, s)
	n := len(e.queue) - 1
	if i != n {
		e.queue[i] = e.queue[n]
		e.slots[e.queue[i].slot].pos = int32(i)
	}
	e.queue[n] = event{} // release the fn reference
	e.queue = e.queue[:n]
	if i < n && !e.siftDown(i) {
		e.siftUp(i)
	}
}

// Step executes the next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue[0]
	e.removeAt(0)
	e.now = ev.at
	e.processed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued and the clock at min(deadline, last event time). The
// head of the queue is always live (cancellation removes eagerly), so
// the deadline check is exact.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// less orders heap entries by (at, seq): time order with FIFO
// tie-breaking for simultaneous events.
//
//polyvet:inline heap comparator; called O(log n) times per event
func (e *Engine) less(i, j int) bool {
	if e.queue[i].at != e.queue[j].at {
		return e.queue[i].at < e.queue[j].at
	}
	return e.queue[i].seq < e.queue[j].seq
}

//polyvet:inline heap swap; called O(log n) times per event
func (e *Engine) swap(i, j int) {
	e.queue[i], e.queue[j] = e.queue[j], e.queue[i]
	e.slots[e.queue[i].slot].pos = int32(i)
	e.slots[e.queue[j].slot].pos = int32(j)
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(i, p) {
			break
		}
		e.swap(i, p)
		i = p
	}
}

// siftDown restores heap order below i and reports whether i moved.
func (e *Engine) siftDown(i int) bool {
	start := i
	n := len(e.queue)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if e.less(j, m) {
				m = j
			}
		}
		if !e.less(m, i) {
			break
		}
		e.swap(i, m)
		i = m
	}
	return i > start
}

// RNG returns a deterministic random stream derived from seed and a
// stream label, so independent components (workload arrivals, ECMP
// hashing, overhead sampling) never share state and results are
// reproducible per seed.
func RNG(seed int64, stream string) *rand.Rand {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for _, b := range []byte(stream) {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return rand.New(rand.NewSource(int64(h)))
}
