// Package sim provides a deterministic discrete-event simulation
// engine: a monotonic virtual clock, a binary-heap event queue with
// stable FIFO ordering for simultaneous events, and seedable RNG
// streams. All of Polyraptor's protocol evaluation (the network
// simulator, the TCP baseline and the experiment harness) runs on this
// engine; determinism per seed is what makes the paper's
// five-seed error bars reproducible.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is simulated time. It aliases time.Duration (nanosecond ticks)
// so durations, rates and pretty-printing come for free.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
	id  uint64
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations are deterministic single-goroutine
// programs by design.
type Engine struct {
	now       Time
	queue     eventQueue
	seq       uint64
	nextID    uint64
	cancelled map[uint64]bool
	processed uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{cancelled: make(map[uint64]bool)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued (including
// cancelled events not yet reaped).
func (e *Engine) Pending() int { return len(e.queue) }

// Timer identifies a scheduled event for cancellation.
type Timer struct {
	id     uint64
	engine *Engine
}

// At schedules fn at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	e.nextID++
	ev := &event{at: t, seq: e.seq, fn: fn, id: e.nextID}
	heap.Push(&e.queue, ev)
	return Timer{id: ev.id, engine: e}
}

// After schedules fn after delay d.
func (e *Engine) After(d Time, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t Timer) Cancel() {
	if t.engine != nil && t.id != 0 {
		t.engine.cancelled[t.id] = true
	}
}

// Step executes the next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if e.cancelled[ev.id] {
			delete(e.cancelled, ev.id)
			continue
		}
		e.now = ev.at
		e.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later
// events queued and the clock at min(deadline, last event time).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// RNG returns a deterministic random stream derived from seed and a
// stream label, so independent components (workload arrivals, ECMP
// hashing, overhead sampling) never share state and results are
// reproducible per seed.
func RNG(seed int64, stream string) *rand.Rand {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for _, b := range []byte(stream) {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return rand.New(rand.NewSource(int64(h)))
}
