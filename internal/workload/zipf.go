package workload

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples object indices 0..N-1 with popularity proportional to
// 1/(rank+1)^skew — the access skew of real object stores (a few hot
// blocks, a long cold tail). skew = 0 degenerates to uniform; the
// commonly cited web/storage skew is ~0.9-1.1. Sampling walks a
// precomputed CDF, so draws are O(log N) and deterministic given the
// caller's RNG stream.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the popularity CDF for n objects at the given
// skew. It panics on n < 1 or negative skew: both are configuration
// errors, not runtime conditions.
func NewZipf(n int, skew float64) *Zipf {
	if n < 1 {
		panic("workload: Zipf needs at least one object")
	}
	if skew < 0 {
		panic("workload: Zipf skew must be non-negative")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving the last bin short
	return &Zipf{cdf: cdf}
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one object index from the popularity distribution.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Weight returns the probability mass of object i.
func (z *Zipf) Weight(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
