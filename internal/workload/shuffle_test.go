package workload

import (
	"testing"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

func shuffleFabric(t *testing.T) *topology.FatTree {
	t.Helper()
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestGenerateShuffleUniform(t *testing.T) {
	ft := shuffleFabric(t)
	cfg := ShuffleConfig{Mappers: 3, Reducers: 4, BytesPerPair: 64 << 10, Seed: 1}
	sh := GenerateShuffle(cfg, ft)
	if len(sh.Mappers) != 3 || len(sh.Reducers) != 4 {
		t.Fatalf("sets %dx%d, want 3x4", len(sh.Mappers), len(sh.Reducers))
	}
	seen := map[int]bool{}
	for _, h := range append(append([]int{}, sh.Mappers...), sh.Reducers...) {
		if seen[h] {
			t.Fatalf("host %d appears twice across mapper/reducer sets", h)
		}
		seen[h] = true
	}
	if sh.Straggler != -1 {
		t.Fatalf("straggler = %d with factor disabled, want -1", sh.Straggler)
	}
	for m, row := range sh.Bytes {
		for r, b := range row {
			if b != cfg.BytesPerPair {
				t.Fatalf("skew=0 pair (%d,%d) = %d bytes, want exactly %d", m, r, b, cfg.BytesPerPair)
			}
		}
	}
	if got, want := sh.TotalBytes(), cfg.BytesPerPair*3*4; got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func TestGenerateShuffleSkewAndStraggler(t *testing.T) {
	ft := shuffleFabric(t)
	cfg := ShuffleConfig{
		Mappers: 4, Reducers: 4, BytesPerPair: 64 << 10,
		Skew: 1.0, StragglerFactor: 4, Seed: 2,
	}
	sh := GenerateShuffle(cfg, ft)
	if sh.Straggler < 0 || sh.Straggler >= 4 {
		t.Fatalf("straggler index = %d, want in [0,4)", sh.Straggler)
	}
	// Zipf skew: reducer 0 is the hottest partition on every row.
	for m, row := range sh.Bytes {
		for r := 1; r < len(row); r++ {
			if row[r] > row[0] {
				t.Fatalf("mapper %d: reducer %d (%d B) larger than hottest reducer 0 (%d B)", m, r, row[r], row[0])
			}
		}
	}
	// The straggler's row dominates every other row pairwise.
	for m, row := range sh.Bytes {
		if m == sh.Straggler {
			continue
		}
		for r := range row {
			if want := row[r] * 4; sh.Bytes[sh.Straggler][r] != want {
				t.Fatalf("straggler pair %d = %d B, want %dx of mapper %d's %d B",
					r, sh.Bytes[sh.Straggler][r], 4, m, row[r])
			}
		}
	}
	// Mean preserved per non-straggler row.
	var rowTotal int64
	for _, b := range sh.Bytes[(sh.Straggler+1)%4] {
		rowTotal += b
	}
	mean := rowTotal / 4
	if mean < cfg.BytesPerPair*95/100 || mean > cfg.BytesPerPair*105/100 {
		t.Fatalf("row mean %d strays from BytesPerPair %d", mean, cfg.BytesPerPair)
	}
}

func TestGenerateShuffleDeterministic(t *testing.T) {
	ft := shuffleFabric(t)
	cfg := ShuffleConfig{Mappers: 3, Reducers: 5, BytesPerPair: 32 << 10, Skew: 0.9, StragglerFactor: 2, Seed: 7}
	a := GenerateShuffle(cfg, ft)
	b := GenerateShuffle(cfg, ft)
	if a.Straggler != b.Straggler {
		t.Fatal("straggler draw not deterministic")
	}
	for i := range a.Mappers {
		if a.Mappers[i] != b.Mappers[i] {
			t.Fatal("mapper selection not deterministic")
		}
	}
	for i := range a.Reducers {
		if a.Reducers[i] != b.Reducers[i] {
			t.Fatal("reducer selection not deterministic")
		}
	}
	for m := range a.Bytes {
		for r := range a.Bytes[m] {
			if a.Bytes[m][r] != b.Bytes[m][r] {
				t.Fatal("partition matrix not deterministic")
			}
		}
	}
	cfg.Seed = 8
	c := GenerateShuffle(cfg, ft)
	same := true
	for i := range a.Mappers {
		if a.Mappers[i] != c.Mappers[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical mapper sets")
	}
}

func TestGenerateShuffleValidation(t *testing.T) {
	ft := shuffleFabric(t)
	expectPanic := func(name string, cfg ShuffleConfig) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		GenerateShuffle(cfg, ft)
	}
	expectPanic("no mappers", ShuffleConfig{Mappers: 0, Reducers: 1, BytesPerPair: 1})
	expectPanic("no reducers", ShuffleConfig{Mappers: 1, Reducers: 0, BytesPerPair: 1})
	expectPanic("too many hosts", ShuffleConfig{Mappers: 10, Reducers: 7, BytesPerPair: 1}) // k=4 has 16 hosts
	expectPanic("zero bytes", ShuffleConfig{Mappers: 1, Reducers: 1, BytesPerPair: 0})
	expectPanic("negative skew", ShuffleConfig{Mappers: 1, Reducers: 1, BytesPerPair: 1, Skew: -1})
	expectPanic("fractional straggler", ShuffleConfig{Mappers: 1, Reducers: 1, BytesPerPair: 1, StragglerFactor: 0.5})
}
