package workload

import (
	"math"
	"testing"

	"polyraptor/internal/netsim"
	"polyraptor/internal/topology"
)

func testRacks(t *testing.T) *topology.FatTree {
	t.Helper()
	ft, err := topology.NewFatTree(4, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Sessions = 500
	return cfg
}

func TestGenerateCountAndOrder(t *testing.T) {
	ft := testRacks(t)
	ss := Generate(smallCfg(), ft)
	if len(ss) != 500 {
		t.Fatalf("sessions = %d", len(ss))
	}
	for i := 1; i < len(ss); i++ {
		if ss[i].Start < ss[i-1].Start {
			t.Fatal("arrival times not monotone")
		}
		if ss[i].ID != i {
			t.Fatal("IDs not dense")
		}
	}
}

func TestPoissonRateRoughlyLambda(t *testing.T) {
	ft := testRacks(t)
	cfg := smallCfg()
	cfg.Sessions = 5000
	ss := Generate(cfg, ft)
	span := (ss[len(ss)-1].Start - ss[0].Start).Seconds()
	rate := float64(len(ss)-1) / span
	if math.Abs(rate-cfg.Lambda)/cfg.Lambda > 0.10 {
		t.Fatalf("observed rate %.0f/s, want ~%.0f/s", rate, cfg.Lambda)
	}
}

func TestBackgroundFraction(t *testing.T) {
	ft := testRacks(t)
	cfg := smallCfg()
	cfg.Sessions = 4000
	ss := Generate(cfg, ft)
	bg := 0
	for _, s := range ss {
		if s.Kind == Background {
			bg++
		}
	}
	frac := float64(bg) / float64(len(ss))
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("background fraction = %.3f, want ~0.20", frac)
	}
}

func TestReplicasOutsideRackAndDistinct(t *testing.T) {
	ft := testRacks(t)
	cfg := smallCfg()
	cfg.Replicas = 3
	for _, s := range Generate(cfg, ft) {
		if s.Kind == Background {
			if len(s.Peers) != 1 {
				t.Fatalf("background session with %d peers", len(s.Peers))
			}
			continue
		}
		if len(s.Peers) != 3 {
			t.Fatalf("foreground session with %d peers", len(s.Peers))
		}
		seen := map[int]bool{}
		for _, p := range s.Peers {
			if p == s.Client {
				t.Fatal("peer equals client")
			}
			if ft.SameRack(s.Client, p) {
				t.Fatalf("peer %d in client %d's rack", p, s.Client)
			}
			if seen[p] {
				t.Fatal("duplicate peer in session")
			}
			seen[p] = true
		}
	}
}

func TestPermutationSpreadsClients(t *testing.T) {
	ft := testRacks(t)
	cfg := smallCfg()
	cfg.Sessions = ft.NumHosts() * 4
	counts := map[int]int{}
	for _, s := range Generate(cfg, ft) {
		counts[s.Client]++
	}
	// Permutation traffic matrix: after 4 full rounds every host has
	// been a client exactly 4 times.
	for h := 0; h < ft.NumHosts(); h++ {
		if counts[h] != 4 {
			t.Fatalf("host %d was client %d times, want 4", h, counts[h])
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	ft := testRacks(t)
	a := Generate(smallCfg(), ft)
	b := Generate(smallCfg(), ft)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Client != b[i].Client || a[i].Kind != b[i].Kind {
			t.Fatalf("session %d differs across identical seeds", i)
		}
	}
	cfg2 := smallCfg()
	cfg2.Seed = 99
	c := Generate(cfg2, ft)
	same := 0
	for i := range a {
		if a[i].Client == c[i].Client {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateIncast(t *testing.T) {
	ft := testRacks(t)
	ic := GenerateIncast(IncastConfig{Senders: 8, BytesPerSender: 70 << 10, Seed: 3}, ft)
	if len(ic.Senders) != 8 {
		t.Fatalf("senders = %d", len(ic.Senders))
	}
	seen := map[int]bool{}
	for _, s := range ic.Senders {
		if s == ic.Client || ft.SameRack(ic.Client, s) || seen[s] {
			t.Fatalf("bad sender %d (client %d)", s, ic.Client)
		}
		seen[s] = true
	}
	if ic.Bytes != 70<<10 {
		t.Fatalf("bytes = %d", ic.Bytes)
	}
}

func TestGenerateIncastDeterministic(t *testing.T) {
	ft := testRacks(t)
	a := GenerateIncast(IncastConfig{Senders: 4, BytesPerSender: 1, Seed: 7}, ft)
	b := GenerateIncast(IncastConfig{Senders: 4, BytesPerSender: 1, Seed: 7}, ft)
	if a.Client != b.Client {
		t.Fatal("incast not deterministic")
	}
}
