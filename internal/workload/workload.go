// Package workload generates the paper's traffic patterns: Poisson
// session arrivals (λ = 2560/s), a permutation traffic matrix for
// session scheduling, randomly selected out-of-rack replica sets, a
// 20% background-traffic mix, and the synchronized incast pattern of
// Figure 1c. All draws are deterministic per seed.
package workload

import (
	"math"
	"math/rand"

	"polyraptor/internal/sim"
)

// Kind distinguishes foreground pattern sessions from background
// unicast filler.
type Kind uint8

const (
	// Foreground sessions follow the experiment's pattern (multicast
	// replication, multi-source fetch, or plain unicast) and are the
	// sessions the figures report.
	Foreground Kind = iota
	// Background sessions are plain unicast filler (20% of sessions).
	Background
)

// Session is one scheduled transfer.
type Session struct {
	// ID is dense, 0..N-1, in arrival order.
	ID int
	// Kind is foreground or background.
	Kind Kind
	// Start is the Poisson arrival time.
	Start sim.Time
	// Client is the host that initiates: the writer in one-to-many
	// runs, the reader in many-to-one runs.
	Client int
	// Peers are the other endpoints: replica servers (out-of-rack) for
	// foreground sessions, a single random destination for background.
	Peers []int
	// Bytes is the object size.
	Bytes int64
}

// RackView is what the generator needs to know about the topology:
// enough to pick peers outside the client's rack (the paper places the
// replica servers "randomly ... outside the client's rack").
type RackView interface {
	NumHosts() int
	SameRack(a, b int) bool
}

// Config parametrises the generator; defaults follow Figure 1a/1b.
type Config struct {
	// Sessions is the total session count (paper: 10,000).
	Sessions int
	// Lambda is the Poisson arrival rate in sessions per second
	// (paper: 2560).
	Lambda float64
	// Bytes is the foreground object size (paper: 4 MB).
	Bytes int64
	// BackgroundBytes is the background object size (assumed equal to
	// foreground; documented in DESIGN.md).
	BackgroundBytes int64
	// BackgroundFrac is the fraction of sessions that are background
	// (paper: 0.20).
	BackgroundFrac float64
	// Replicas is the number of peers per foreground session (paper:
	// 1 or 3).
	Replicas int
	// Sizes, when non-nil, draws each foreground session's size from
	// an empirical distribution instead of the fixed Bytes (the
	// paper's "different workloads" extension).
	Sizes *SizeDist
	// Seed drives all random choices.
	Seed int64
}

// DefaultConfig returns the Figure 1a/1b parameters at paper scale.
func DefaultConfig() Config {
	return Config{
		Sessions:        10000,
		Lambda:          2560,
		Bytes:           4 << 20,
		BackgroundBytes: 4 << 20,
		BackgroundFrac:  0.20,
		Replicas:        3,
		Seed:            1,
	}
}

// Generate produces the session schedule. Clients are drawn from a
// repeatedly reshuffled permutation of the hosts (the paper's
// "permutation traffic matrix": every host is a client once per round,
// so load spreads evenly); replica peers are drawn uniformly among
// hosts outside the client's rack, distinct within a session.
func Generate(cfg Config, racks RackView) []Session {
	arrivals := sim.RNG(cfg.Seed, "arrivals")
	perm := sim.RNG(cfg.Seed, "permutation")
	peers := sim.RNG(cfg.Seed, "peers")
	kindRng := sim.RNG(cfg.Seed, "kind")
	sizeRng := sim.RNG(cfg.Seed, "sizes")

	n := racks.NumHosts()
	order := perm.Perm(n)
	next := 0
	clientOf := func() int {
		if next == len(order) {
			order = perm.Perm(n)
			next = 0
		}
		c := order[next]
		next++
		return c
	}

	var t sim.Time
	out := make([]Session, 0, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		// Exponential inter-arrival with rate lambda.
		gap := -math.Log(1-arrivals.Float64()) / cfg.Lambda
		t += sim.Time(gap * 1e9)
		s := Session{ID: i, Start: t, Client: clientOf()}
		if kindRng.Float64() < cfg.BackgroundFrac {
			s.Kind = Background
			s.Bytes = cfg.BackgroundBytes
			s.Peers = []int{randomPeerOutsideRack(peers, racks, s.Client, nil)}
		} else {
			s.Kind = Foreground
			s.Bytes = cfg.Bytes
			if cfg.Sizes != nil {
				s.Bytes = cfg.Sizes.Sample(sizeRng)
			}
			s.Peers = pickReplicas(peers, racks, s.Client, cfg.Replicas)
		}
		out = append(out, s)
	}
	return out
}

// pickReplicas draws `count` distinct hosts outside the client's rack.
func pickReplicas(rng *rand.Rand, racks RackView, client, count int) []int {
	picked := make([]int, 0, count)
	for len(picked) < count {
		picked = append(picked, randomPeerOutsideRack(rng, racks, client, picked))
	}
	return picked
}

func randomPeerOutsideRack(rng *rand.Rand, racks RackView, client int, exclude []int) int {
	n := racks.NumHosts()
	for {
		p := rng.Intn(n)
		if p == client || racks.SameRack(client, p) {
			continue
		}
		dup := false
		for _, e := range exclude {
			if e == p {
				dup = true
				break
			}
		}
		if !dup {
			return p
		}
	}
}

// IncastConfig parametrises Figure 1c: N servers synchronously send a
// block each to one client.
type IncastConfig struct {
	// Senders is the number of synchronized senders.
	Senders int
	// BytesPerSender is the block each sender transmits (paper: 256 KB
	// and 70 KB series).
	BytesPerSender int64
	// Seed drives host selection.
	Seed int64
}

// Incast is one synchronized scenario instance.
type Incast struct {
	Client  int
	Senders []int
	Bytes   int64
}

// GenerateIncast picks a random client and N distinct senders outside
// its rack, all starting at t=0 (synchronized short flows).
func GenerateIncast(cfg IncastConfig, racks RackView) Incast {
	rng := sim.RNG(cfg.Seed, "incast")
	client := rng.Intn(racks.NumHosts())
	return Incast{
		Client:  client,
		Senders: pickReplicas(rng, racks, client, cfg.Senders),
		Bytes:   cfg.BytesPerSender,
	}
}
