package workload

import (
	"maps"
	"math"
	"math/rand"
	"slices"
	"sort"
)

// SizeDist is an empirical flow-size distribution sampled by inverse
// CDF with log-linear interpolation between knots. The paper lists
// "evaluating Polyraptor's behaviour under different workloads" as
// current work; these distributions drive that extension experiment
// (harness.RunFlowSizeExperiment).
type SizeDist struct {
	// Name labels result tables.
	Name string
	// knots are (bytes, cumulative probability) pairs, sorted by
	// probability, ending at probability 1.
	knots []cdfKnot
}

type cdfKnot struct {
	bytes float64
	cum   float64
}

// NewSizeDist builds a distribution from (bytes, cumulativeProb)
// knots. Knots are sorted; the last must have cumulative probability
// 1. Panics on malformed input (distributions are program constants).
func NewSizeDist(name string, knots map[int64]float64) SizeDist {
	d := SizeDist{Name: name}
	for _, b := range slices.Sorted(maps.Keys(knots)) {
		c := knots[b]
		if b < 1 || c <= 0 || c > 1 {
			panic("workload: malformed size distribution knot")
		}
		d.knots = append(d.knots, cdfKnot{bytes: float64(b), cum: c})
	}
	sort.Slice(d.knots, func(i, j int) bool { return d.knots[i].cum < d.knots[j].cum })
	if len(d.knots) == 0 || d.knots[len(d.knots)-1].cum != 1 {
		panic("workload: size distribution must end at cumulative probability 1")
	}
	for i := 1; i < len(d.knots); i++ {
		if d.knots[i].bytes < d.knots[i-1].bytes {
			panic("workload: size distribution CDF must be monotone in bytes")
		}
	}
	return d
}

// Sample draws one flow size.
func (d SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	prev := cdfKnot{bytes: 1, cum: 0}
	for _, k := range d.knots {
		if u <= k.cum {
			// Log-linear interpolation between prev and k: flow sizes
			// span decades, so interpolating in log-space avoids
			// overweighting the upper end of each segment.
			frac := (u - prev.cum) / (k.cum - prev.cum)
			lo, hi := math.Log(prev.bytes), math.Log(k.bytes)
			return int64(math.Exp(lo + frac*(hi-lo)))
		}
		prev = k
	}
	return int64(d.knots[len(d.knots)-1].bytes)
}

// Mean estimates the distribution mean by quadrature over the CDF.
func (d SizeDist) Mean() float64 {
	var mean float64
	prev := cdfKnot{bytes: 1, cum: 0}
	for _, k := range d.knots {
		// Log-space mid-point of the segment, weighted by its mass.
		mid := math.Exp((math.Log(prev.bytes) + math.Log(k.bytes)) / 2)
		mean += mid * (k.cum - prev.cum)
		prev = k
	}
	return mean
}

// WebSearchDist approximates the web-search workload popularised by
// the DCTCP paper: mostly sub-100 KB query/response traffic with a
// background of multi-megabyte updates. (Knot values approximate the
// published CDF; the extension experiment only needs the qualitative
// small-flow-dominated shape.)
func WebSearchDist() SizeDist {
	return NewSizeDist("web-search", map[int64]float64{
		6 << 10:   0.15,
		13 << 10:  0.25,
		19 << 10:  0.35,
		33 << 10:  0.45,
		53 << 10:  0.55,
		133 << 10: 0.65,
		667 << 10: 0.75,
		1 << 20:   0.80,
		2 << 20:   0.85,
		7 << 20:   0.92,
		20 << 20:  0.98,
		30 << 20:  1.00,
	})
}

// DataMiningDist approximates the data-mining workload of the VL2
// paper: ~80% of flows under 100 KB but virtually all bytes in
// multi-megabyte elephants.
func DataMiningDist() SizeDist {
	return NewSizeDist("data-mining", map[int64]float64{
		1 << 10:   0.45,
		10 << 10:  0.63,
		100 << 10: 0.80,
		1 << 20:   0.85,
		10 << 20:  0.92,
		100 << 20: 0.98,
		256 << 20: 1.00,
	})
}
