package workload

import (
	"testing"

	"polyraptor/internal/sim"
)

// TestZipfDeterminism: identical seeds draw identical sequences;
// different seeds diverge.
func TestZipfDeterminism(t *testing.T) {
	z := NewZipf(100, 0.9)
	draw := func(seed int64) []int {
		rng := sim.RNG(seed, "zipf-test")
		out := make([]int, 200)
		for i := range out {
			out[i] = z.Sample(rng)
		}
		return out
	}
	a, b, c := draw(1), draw(1), draw(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
		}
		same = same && a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

// TestZipfSkew: higher skew concentrates mass on low ranks; skew 0 is
// uniform.
func TestZipfSkew(t *testing.T) {
	uniform := NewZipf(50, 0)
	if w0, w49 := uniform.Weight(0), uniform.Weight(49); w0-w49 > 1e-12 || w49-w0 > 1e-12 {
		t.Fatalf("skew 0 not uniform: w0=%g w49=%g", w0, w49)
	}
	mild, hot := NewZipf(50, 0.5), NewZipf(50, 1.5)
	if !(hot.Weight(0) > mild.Weight(0) && mild.Weight(0) > uniform.Weight(0)) {
		t.Fatalf("head mass not increasing with skew: %g %g %g",
			uniform.Weight(0), mild.Weight(0), hot.Weight(0))
	}
	for _, z := range []*Zipf{uniform, mild, hot} {
		sum := 0.0
		for i := 0; i < z.N(); i++ {
			sum += z.Weight(i)
		}
		if sum < 0.999999 || sum > 1.000001 {
			t.Fatalf("weights sum to %g, want 1", sum)
		}
	}
}

// TestZipfSampleRange: every draw is a valid index and, with skew, the
// most popular object really is drawn most often.
func TestZipfSampleRange(t *testing.T) {
	z := NewZipf(20, 1.0)
	rng := sim.RNG(3, "zipf-range")
	counts := make([]int, 20)
	for i := 0; i < 20000; i++ {
		s := z.Sample(rng)
		if s < 0 || s >= 20 {
			t.Fatalf("sample %d out of range", s)
		}
		counts[s]++
	}
	for i := 1; i < 20; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d drawn %d times vs rank 0's %d — skew inverted", i, counts[i], counts[0])
		}
	}
}
