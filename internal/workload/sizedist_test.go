package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSizeDistValidation(t *testing.T) {
	assertPanics := func(name string, knots map[int64]float64) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		NewSizeDist(name, knots)
	}
	assertPanics("empty", map[int64]float64{})
	assertPanics("no-unit-cum", map[int64]float64{100: 0.5})
	assertPanics("zero-bytes", map[int64]float64{0: 1.0})
	assertPanics("cum>1", map[int64]float64{100: 1.5})
	assertPanics("non-monotone", map[int64]float64{1000: 0.5, 10: 1.0})
}

func TestSizeDistSampleWithinSupport(t *testing.T) {
	d := NewSizeDist("test", map[int64]float64{
		1 << 10: 0.5,
		1 << 20: 1.0,
	})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 1<<20 {
			t.Fatalf("sample %d outside support", v)
		}
	}
}

func TestSizeDistRespectsMasses(t *testing.T) {
	d := NewSizeDist("test", map[int64]float64{
		1 << 10: 0.5,
		1 << 20: 1.0,
	})
	rng := rand.New(rand.NewSource(2))
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(rng) <= 1<<10 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("mass below first knot = %.3f, want ~0.5", frac)
	}
}

func TestSizeDistDeterministicPerSeed(t *testing.T) {
	d := WebSearchDist()
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestSizeDistSamplePositiveQuick(t *testing.T) {
	d := DataMiningDist()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			if d.Sample(rng) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuiltinDistShapes(t *testing.T) {
	// Web-search: mean in the hundreds of KB to few MB (heavy-tailed).
	ws := WebSearchDist().Mean()
	if ws < 100<<10 || ws > 10<<20 {
		t.Fatalf("web-search mean = %.0f bytes", ws)
	}
	// Data-mining is more extreme: mean dominated by elephants.
	dm := DataMiningDist().Mean()
	if dm < ws {
		t.Fatalf("data-mining mean (%.0f) should exceed web-search (%.0f)", dm, ws)
	}
}

func TestGenerateWithSizeDist(t *testing.T) {
	ftLike := fixedRacks{n: 16}
	cfg := DefaultConfig()
	cfg.Sessions = 300
	dist := WebSearchDist()
	cfg.Sizes = &dist
	cfg.BackgroundFrac = 0.2
	sessions := Generate(cfg, ftLike)
	varied := map[int64]bool{}
	for _, s := range sessions {
		if s.Kind == Foreground {
			varied[s.Bytes] = true
			if s.Bytes < 1 {
				t.Fatal("non-positive foreground size")
			}
		} else if s.Bytes != cfg.BackgroundBytes {
			t.Fatal("background size must stay fixed")
		}
	}
	if len(varied) < 50 {
		t.Fatalf("only %d distinct foreground sizes; distribution not applied", len(varied))
	}
}

// fixedRacks is a minimal RackView for tests that don't need a fabric.
type fixedRacks struct{ n int }

func (f fixedRacks) NumHosts() int          { return f.n }
func (f fixedRacks) SameRack(a, b int) bool { return a/2 == b/2 }
