package workload

import (
	"fmt"

	"polyraptor/internal/sim"
)

// ShuffleConfig parametrises the many-to-many shuffle pattern: every
// mapper holds one distinct partition per reducer and all M×R
// transfers start synchronously — the stress case SCDP evaluates for
// rateless transport, and the pattern RepFlow's multipath FCT baseline
// targets.
type ShuffleConfig struct {
	// Mappers and Reducers are the set sizes; hosts are drawn
	// distinctly, so Mappers+Reducers must not exceed the fabric.
	Mappers, Reducers int
	// BytesPerPair is the mean partition size. With Skew = 0 every
	// pair is exactly this size.
	BytesPerPair int64
	// Skew spreads partition sizes across reducers by Zipf popularity
	// (a few hot reducers receive most of the data); pair sizes are
	// scaled so the mean stays BytesPerPair.
	Skew float64
	// StragglerFactor, when > 1, scales one randomly chosen mapper's
	// partitions by the factor — the straggler whose transfers gate
	// shuffle completion. 0 (or 1) disables.
	StragglerFactor float64
	// Seed drives host selection and the straggler draw.
	Seed int64
}

// Shuffle is one generated scenario instance.
type Shuffle struct {
	// Mappers and Reducers are the selected host IDs (disjoint sets).
	Mappers, Reducers []int
	// Bytes is the partition matrix, Bytes[mapper index][reducer index].
	Bytes [][]int64
	// Straggler is the index into Mappers of the scaled mapper, or -1.
	Straggler int
}

// TotalBytes returns the volume the shuffle moves over the network.
func (s Shuffle) TotalBytes() int64 {
	var total int64
	for _, row := range s.Bytes {
		for _, b := range row {
			total += b
		}
	}
	return total
}

// PairBytes adapts the matrix to the bytesPerPair function
// polyraptor.System.StartShuffle consumes.
func (s Shuffle) PairBytes(mi, ri int) int64 { return s.Bytes[mi][ri] }

// GenerateShuffle draws disjoint mapper and reducer host sets and
// builds the partition-size matrix. Reducer-side skew follows the
// existing Zipf popularity model; the straggler mapper (if enabled) is
// one uniform draw. All choices are deterministic per seed. Invalid
// configurations panic: they are configuration errors, not runtime
// conditions.
func GenerateShuffle(cfg ShuffleConfig, racks RackView) Shuffle {
	if cfg.Mappers < 1 || cfg.Reducers < 1 {
		panic(fmt.Sprintf("workload: shuffle needs >= 1 mapper and reducer, got %dx%d", cfg.Mappers, cfg.Reducers))
	}
	if n := racks.NumHosts(); cfg.Mappers+cfg.Reducers > n {
		panic(fmt.Sprintf("workload: shuffle needs %d distinct hosts, fabric has %d", cfg.Mappers+cfg.Reducers, n))
	}
	if cfg.BytesPerPair < 1 {
		panic(fmt.Sprintf("workload: shuffle BytesPerPair must be >= 1, got %d", cfg.BytesPerPair))
	}
	if cfg.Skew < 0 {
		panic("workload: shuffle Skew must be non-negative")
	}
	if cfg.StragglerFactor != 0 && cfg.StragglerFactor < 1 {
		panic(fmt.Sprintf("workload: shuffle StragglerFactor must be 0 (off) or >= 1, got %g", cfg.StragglerFactor))
	}

	rng := sim.RNG(cfg.Seed, "shuffle")
	perm := rng.Perm(racks.NumHosts())
	sh := Shuffle{
		Mappers:   perm[:cfg.Mappers],
		Reducers:  perm[cfg.Mappers : cfg.Mappers+cfg.Reducers],
		Straggler: -1,
	}

	// Reducer weights: Zipf mass scaled so the row mean is
	// BytesPerPair (the weights sum to 1, so multiplying by R keeps
	// the total per mapper at R*BytesPerPair).
	z := NewZipf(cfg.Reducers, cfg.Skew)
	base := make([]int64, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		b := float64(cfg.BytesPerPair) * z.Weight(r) * float64(cfg.Reducers)
		if b < 1 {
			b = 1
		}
		base[r] = int64(b)
	}
	if cfg.StragglerFactor > 1 {
		sh.Straggler = rng.Intn(cfg.Mappers)
	}

	sh.Bytes = make([][]int64, cfg.Mappers)
	for m := range sh.Bytes {
		row := make([]int64, cfg.Reducers)
		for r := range row {
			row[r] = base[r]
			if m == sh.Straggler {
				// Scale from the truncated base so the straggler's
				// partitions are an exact multiple of its peers'.
				if scaled := int64(float64(base[r]) * cfg.StragglerFactor); scaled > 0 {
					row[r] = scaled
				}
			}
		}
		sh.Bytes[m] = row
	}
	return sh
}
