package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"polyraptor/internal/sim"
)

// Chrome trace-event exporter. The output is the legacy JSON-array
// trace format, loadable directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing: one process of per-flow lanes (a complete-event
// span per session, instants for stalls/retransmits/timeouts/drops,
// counter ramps for symbol and pull progress) and one process of
// fabric counter tracks (queue depths, per-link throughput, drop and
// session gauges sampled by the probe).
//
// Everything is emitted in a deterministic order — flows in open
// order, events chronologically, series in registration order — so a
// traced run's JSON is byte-stable per seed.

const (
	pidFlows  = 1
	pidFabric = 2
)

// WriteChrome writes the trace as Chrome trace-event JSON.
func (t *Trace) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{")
	keys, vals := t.Meta()
	for i, k := range keys {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%s:%s", jstr(k), jstr(vals[i]))
	}
	fmt.Fprintf(bw, "},\"traceEvents\":[\n")

	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Process/thread naming metadata.
	emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"ts":0,"args":{"name":"flows"}}`, pidFlows)
	emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"ts":0,"args":{"name":"fabric"}}`, pidFabric)
	diags := t.Explain()
	for _, d := range diags {
		f := d.Info
		dst := fmt.Sprintf("%d", f.Dst)
		if f.Dst < 0 {
			dst = fmt.Sprintf("%d rcvrs", f.Receivers)
		}
		emit(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"ts":0,"args":{"name":%s}}`,
			pidFlows, f.Flow, jstr(fmt.Sprintf("flow %d %s %d->%s", f.Flow, f.Proto, f.Src, dst)))
		emit(`{"name":"thread_sort_index","ph":"M","pid":%d,"tid":%d,"ts":0,"args":{"sort_index":%d}}`,
			pidFlows, f.Flow, f.Flow)
	}

	// Session spans: one complete event per flow; stalled flows run to
	// the end of the trace.
	for _, d := range diags {
		f := d.Info
		end := f.End
		if d.Stalled {
			end = t.End
		}
		if end < f.Start {
			end = f.Start
		}
		emit(`{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"bytes":%d,"stalled":%v,"verdict":%s,"goodput_gbps":%.4f}}`,
			jstr(f.Proto+" transfer"), pidFlows, f.Flow, usec(f.Start), usec(end-f.Start),
			f.Bytes, d.Stalled, jstr(string(d.Verdict)), f.GoodputGbps())
	}

	// Chronological pass: instants and per-flow progress counters.
	rx := map[int32]int{}
	pulls := map[int32]int{}
	t.Rec.Events(func(ev Event) {
		switch ev.Kind {
		case EvOpen, EvClose:
		case EvSymbol, EvDup:
			rx[ev.Flow]++
			emit(`{"name":%s,"ph":"C","pid":%d,"ts":%s,"args":{"rx":%d}}`,
				jstr(fmt.Sprintf("rx flow %d", ev.Flow)), pidFlows, usec(ev.At), rx[ev.Flow])
		case EvPull:
			pulls[ev.Flow]++
			emit(`{"name":%s,"ph":"C","pid":%d,"ts":%s,"args":{"pulls":%d}}`,
				jstr(fmt.Sprintf("pulls flow %d", ev.Flow)), pidFlows, usec(ev.At), pulls[ev.Flow])
		case EvCwnd:
			emit(`{"name":%s,"ph":"C","pid":%d,"ts":%s,"args":{"segs":%.3f}}`,
				jstr(fmt.Sprintf("cwnd flow %d", ev.Flow)), pidFlows, usec(ev.At), float64(ev.Arg)/1000)
		case EvFault:
			emit(`{"name":%s,"ph":"i","s":"g","pid":%d,"tid":0,"ts":%s}`,
				jstr("fault: "+t.Rec.LabelName(ev.Arg)), pidFabric, usec(ev.At))
		case EvRouteDrop, EvLinkDrop, EvQueueDrop:
			emit(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{"at":%s}}`,
				jstr(ev.Kind.String()), pidFlows, ev.Flow, usec(ev.At), jstr(t.Rec.LabelName(ev.Arg)))
		default:
			emit(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{"arg":%d}}`,
				jstr(ev.Kind.String()), pidFlows, ev.Flow, usec(ev.At), ev.Arg)
		}
	})

	// Fabric counter tracks from the probe. All-zero series are
	// skipped; cumulative byte counters become rate tracks.
	for _, s := range t.Probe.Series() {
		if allZero(s.Vals) {
			continue
		}
		switch s.Unit {
		case "bytes-cum":
			name := jstr("tx " + strings.TrimPrefix(s.Name, "tx ") + " Gbps")
			for i := 1; i < len(s.Vals); i++ {
				dt := (s.Times[i] - s.Times[i-1]).Seconds()
				if dt <= 0 {
					continue
				}
				gbps := (s.Vals[i] - s.Vals[i-1]) * 8 / dt / 1e9
				emit(`{"name":%s,"ph":"C","pid":%d,"ts":%s,"args":{"gbps":%.4f}}`,
					name, pidFabric, usec(s.Times[i]), gbps)
			}
		default:
			name := jstr(s.Name)
			for i := range s.Vals {
				emit(`{"name":%s,"ph":"C","pid":%d,"ts":%s,"args":{%s:%g}}`,
					name, pidFabric, usec(s.Times[i]), jstr(s.Unit), s.Vals[i])
			}
		}
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// usec renders a sim time as microseconds with nanosecond precision.
func usec(t sim.Time) string {
	return fmt.Sprintf("%d.%03d", int64(t)/1000, int64(t)%1000)
}

func allZero(xs []float64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

// jstr renders a JSON string literal.
func jstr(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
