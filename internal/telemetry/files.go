package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WriteFiles writes the trace's full export set under the given base
// path: <base>.trace.json (Chrome trace-event JSON, loadable in
// Perfetto), <base>.series.csv (probe series, long form),
// <base>.events.csv (the raw flight-recorder events) and
// <base>.explain.txt (the per-flow diagnosis report). It returns the
// written paths in that order; on error the already-written files are
// left in place so a partial export is still inspectable.
func (t *Trace) WriteFiles(base string) ([]string, error) {
	exports := []struct {
		suffix string
		fn     func(io.Writer) error
	}{
		{".trace.json", t.WriteChrome},
		{".series.csv", t.WriteCSV},
		{".events.csv", t.WriteEventsCSV},
		{".explain.txt", t.WriteExplain},
	}
	var paths []string
	for _, e := range exports {
		path := base + e.suffix
		if err := writeFile(path, e.fn); err != nil {
			return paths, fmt.Errorf("telemetry: %w", err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// writeFile streams one export through a buffered writer, surfacing
// the first error from create, export, flush or close.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := fn(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
