package telemetry

import (
	"fmt"
	"io"
	"maps"
	"slices"

	"polyraptor/internal/sim"
)

// Verdict classifies why a flow ended the run the way it did.
type Verdict string

// Verdicts, in the order the classifier checks them for a stalled
// flow: a dead path explains a stall before congestion does, because
// blackholed packets never had a chance to queue.
const (
	// VerdictCompleted: every receiver finished.
	VerdictCompleted Verdict = "completed"
	// VerdictDeadPath: the flow's packets were blackholed — routed
	// into a killed switch or an empty live-candidate set.
	VerdictDeadPath Verdict = "dead-path"
	// VerdictLinkLoss: packets were destroyed on down or lossy links.
	VerdictLinkLoss Verdict = "link-loss"
	// VerdictCongestion: packets were dropped by full queues.
	VerdictCongestion Verdict = "congestion"
	// VerdictStarvation: the receiver asked (pulls/opens) but no data
	// and no drops were ever seen — the sender never fed it.
	VerdictStarvation Verdict = "sender-starvation"
)

// FlowDiagnosis is the per-flow summary behind the explain report:
// event counts, drop attribution and the resulting verdict.
type FlowDiagnosis struct {
	Info    *FlowInfo
	Stalled bool
	Verdict Verdict

	// Drop attribution, with the single worst blackhole/drop site.
	RouteDrops, LinkDrops, QueueDrops int
	TopDropSite                       string
	TopDropCount                      int

	// Protocol activity.
	Pulls, Symbols, Dups, Trims int
	Stalls, Ctrls, CtrlAcks     int
	Retransmits, Timeouts       int
	LastData                    sim.Time
	hasData                     bool
}

// Explain scans the recorder once and diagnoses every flow, in open
// order. End is the run's final sim time (Trace.Finish).
func (t *Trace) Explain() []FlowDiagnosis {
	flows := t.Rec.Flows()
	idx := make(map[int32]*FlowDiagnosis, len(flows))
	out := make([]FlowDiagnosis, len(flows))
	for i, f := range flows {
		out[i] = FlowDiagnosis{Info: f, Stalled: !f.Done()}
		idx[f.Flow] = &out[i]
	}
	sites := make(map[int32]map[string]int)
	t.Rec.Events(func(ev Event) {
		d, ok := idx[ev.Flow]
		if !ok {
			return
		}
		switch ev.Kind {
		case EvPull:
			d.Pulls++
		case EvSymbol:
			d.Symbols++
			d.LastData = ev.At
			d.hasData = true
		case EvDup:
			d.Dups++
			d.LastData = ev.At
			d.hasData = true
		case EvTrim:
			d.Trims++
		case EvStall:
			d.Stalls++
		case EvCtrl:
			d.Ctrls++
		case EvCtrlAck:
			d.CtrlAcks++
		case EvRetransmit:
			d.Retransmits++
		case EvTimeout:
			d.Timeouts++
		case EvRouteDrop, EvLinkDrop, EvQueueDrop:
			switch ev.Kind {
			case EvRouteDrop:
				d.RouteDrops++
			case EvLinkDrop:
				d.LinkDrops++
			default:
				d.QueueDrops++
			}
			m := sites[ev.Flow]
			if m == nil {
				m = map[string]int{}
				sites[ev.Flow] = m
			}
			m[t.Rec.LabelName(ev.Arg)]++
		}
	})
	for i := range out {
		d := &out[i]
		if m := sites[d.Info.Flow]; len(m) > 0 {
			// Sorted keys: ties on count break toward the lexically
			// first site on every run.
			for _, s := range slices.Sorted(maps.Keys(m)) {
				if m[s] > d.TopDropCount {
					d.TopDropSite, d.TopDropCount = s, m[s]
				}
			}
		}
		d.Verdict = verdict(d)
	}
	return out
}

func verdict(d *FlowDiagnosis) Verdict {
	if !d.Stalled {
		return VerdictCompleted
	}
	switch {
	case d.RouteDrops > 0:
		return VerdictDeadPath
	case d.LinkDrops > 0:
		return VerdictLinkLoss
	case d.QueueDrops > 0:
		return VerdictCongestion
	default:
		return VerdictStarvation
	}
}

// WriteExplain renders the diagnosis as the text explain report.
func (t *Trace) WriteExplain(w io.Writer) error {
	diags := t.Explain()
	keys, vals := t.Meta()
	fmt.Fprintf(w, "== PolyScope explain ==\n")
	for i, k := range keys {
		fmt.Fprintf(w, "%s=%s ", k, vals[i])
	}
	if len(keys) > 0 {
		fmt.Fprintln(w)
	}
	var stalled int
	for _, d := range diags {
		if d.Stalled {
			stalled++
		}
	}
	fmt.Fprintf(w, "%d flows, %d completed, %d stalled; %d events recorded",
		len(diags), len(diags)-stalled, stalled, t.Rec.Len())
	if dr := t.Rec.Dropped(); dr > 0 {
		fmt.Fprintf(w, " (%d overwritten by the ring)", dr)
	}
	fmt.Fprintf(w, "; run end %v\n\n", t.End)
	for _, d := range diags {
		f := d.Info
		dst := fmt.Sprintf("%d", f.Dst)
		if f.Dst < 0 {
			dst = fmt.Sprintf("%d receivers", f.Receivers)
		}
		fmt.Fprintf(w, "flow %d %s %d->%s %dB: ", f.Flow, f.Proto, f.Src, dst, f.Bytes)
		if d.Stalled {
			fmt.Fprintf(w, "STALLED (%d/%d receivers done)", f.Closed, f.Receivers)
		} else {
			fmt.Fprintf(w, "completed in %v, goodput %.3f Gbps", f.End-f.Start, f.GoodputGbps())
		}
		fmt.Fprintf(w, "\n  verdict: %s", d.Verdict)
		switch d.Verdict {
		case VerdictDeadPath:
			fmt.Fprintf(w, " — %d packets blackholed, worst at %s (%d)", d.RouteDrops, d.TopDropSite, d.TopDropCount)
		case VerdictLinkLoss:
			fmt.Fprintf(w, " — %d packets lost on faulted links, worst at %s (%d)", d.LinkDrops, d.TopDropSite, d.TopDropCount)
		case VerdictCongestion:
			fmt.Fprintf(w, " — %d packets dropped by full queues, worst at %s (%d)", d.QueueDrops, d.TopDropSite, d.TopDropCount)
		case VerdictStarvation:
			fmt.Fprintf(w, " — %d pulls sent, no data ever arrived", d.Pulls)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  activity: %d pulls, %d symbols, %d dups, %d trims, %d stall-guard fires, %d retransmits, %d timeouts\n",
			d.Pulls, d.Symbols, d.Dups, d.Trims, d.Stalls, d.Retransmits, d.Timeouts)
		fmt.Fprintf(w, "  drops: route=%d link=%d queue=%d", d.RouteDrops, d.LinkDrops, d.QueueDrops)
		if d.hasData {
			fmt.Fprintf(w, "; last data arrival %v", d.LastData)
		}
		fmt.Fprintln(w)
	}
	return nil
}
