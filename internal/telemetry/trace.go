package telemetry

import "polyraptor/internal/sim"

// Options configures a Trace.
type Options struct {
	// Interval is the probe sampling period (<= 0 selects
	// DefaultProbeInterval).
	Interval sim.Time
	// Capacity bounds the event ring (0 = unbounded). When the run
	// outgrows it, the oldest events are overwritten — flight-recorder
	// semantics.
	Capacity int
}

// Trace bundles one run's recorder and probe with its identifying
// metadata, and is what the exporters consume. One Trace per
// simulation instance: runs never share one, which is what keeps
// sweep traces deterministic at any parallelism.
type Trace struct {
	Rec   *Recorder
	Probe *Probe

	// End is the run's final sim time, stamped by Finish; exporters
	// use it to close the lanes of flows that never completed.
	End sim.Time

	metaKeys []string
	metaVals []string
}

// New builds an empty trace per the options.
func New(o Options) *Trace {
	return &Trace{Rec: NewRecorder(o.Capacity), Probe: NewProbe(o.Interval)}
}

// SetMeta attaches an identifying key/value (scenario, backend, seed).
// Order of first insertion is preserved in exports.
func (t *Trace) SetMeta(key, value string) {
	for i, k := range t.metaKeys {
		if k == key {
			t.metaVals[i] = value
			return
		}
	}
	t.metaKeys = append(t.metaKeys, key)
	t.metaVals = append(t.metaVals, value)
}

// Meta returns the metadata pairs in insertion order.
func (t *Trace) Meta() (keys, vals []string) { return t.metaKeys, t.metaVals }

// Start begins probe sampling on the engine. Call after all gauges
// are registered and before the simulation runs.
func (t *Trace) Start(eng *sim.Engine) { t.Probe.Start(eng) }

// Finish stamps the run's end time. Call once the simulation has
// stopped, before exporting.
func (t *Trace) Finish(end sim.Time) { t.End = end }
