package telemetry

import "polyraptor/internal/sim"

// Probe samples a set of registered gauges at a fixed sim-time
// interval into per-gauge series. It rides the simulation timeline as
// an ordinary event: each tick reads every gauge and reschedules
// itself while other events remain pending, so a probed engine still
// drains — the tick after the last protocol event notices the empty
// queue and stops. Probe events read state and never mutate it (and
// draw no randomness), so protocol behaviour and results are
// unchanged by sampling.
type Probe struct {
	// Interval is the sampling period.
	Interval sim.Time

	names []string
	units []string
	fns   []func() float64
	vals  [][]float64
	times []sim.Time
}

// DefaultProbeInterval is the sampling period when none is given:
// coarse enough that a multi-second chaos run on a k=6 fabric stays in
// tens of megabytes of samples.
const DefaultProbeInterval = sim.Time(1e6) // 1 ms

// NewProbe returns a probe with the given sampling interval
// (<= 0 selects DefaultProbeInterval).
func NewProbe(interval sim.Time) *Probe {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	return &Probe{Interval: interval}
}

// Gauge registers a sampled channel. The function is called once per
// tick on the sim goroutine; it must only read state. Register all
// gauges before Start — series lengths assume every gauge sees every
// tick.
func (p *Probe) Gauge(name, unit string, fn func() float64) {
	if p == nil {
		return
	}
	p.names = append(p.names, name)
	p.units = append(p.units, unit)
	p.fns = append(p.fns, fn)
	p.vals = append(p.vals, nil)
}

// Start takes the first sample immediately and schedules the periodic
// ticks. Nil-safe so untraced runs skip probing with one branch.
func (p *Probe) Start(eng *sim.Engine) {
	if p == nil || len(p.fns) == 0 {
		return
	}
	p.sample(eng.Now())
	var tick func()
	tick = func() {
		p.sample(eng.Now())
		// Reschedule only while real work remains: a probe that kept
		// itself alive would stop Engine.Run from ever draining.
		if eng.Pending() > 0 {
			eng.After(p.Interval, tick)
		}
	}
	eng.After(p.Interval, tick)
}

func (p *Probe) sample(at sim.Time) {
	p.times = append(p.times, at)
	for i, fn := range p.fns {
		p.vals[i] = append(p.vals[i], fn())
	}
}

// Series is one gauge's fixed-interval samples. Times is shared by
// every series of a probe.
type Series struct {
	// Name identifies the channel ("q core-2:3").
	Name string
	// Unit is the sample unit ("pkt", "bytes-cum", "count").
	Unit string
	// Times are the sample timestamps.
	Times []sim.Time
	// Vals are the samples, parallel to Times.
	Vals []float64
}

// Samples returns the number of ticks taken.
func (p *Probe) Samples() int {
	if p == nil {
		return 0
	}
	return len(p.times)
}

// Series returns every gauge's series in registration order. The
// returned slices alias the probe's storage.
func (p *Probe) Series() []Series {
	if p == nil {
		return nil
	}
	out := make([]Series, len(p.names))
	for i := range p.names {
		out[i] = Series{Name: p.names[i], Unit: p.units[i], Times: p.times, Vals: p.vals[i]}
	}
	return out
}
