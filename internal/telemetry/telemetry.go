// Package telemetry is PolyScope: a zero-cost-when-disabled flight
// recorder and timeline-metrics layer for the simulation stack. It has
// three pieces:
//
//   - a flow event Recorder — an append-only, arena-backed ring of
//     typed events (session open/close, pull sent, symbol/dup arrival,
//     stall-guard fire, completion-ctrl send/ack, TCP retransmit and
//     timeout, cwnd change, chaos fault, per-packet drop attribution)
//     keyed by flow ID and stamped with sim time;
//   - timeline Probes — periodic sim-timeline sampling of gauges
//     (per-port queue depth, cumulative bytes/drops, open sessions)
//     into fixed-interval series;
//   - exporters (chrome.go, export.go) — Chrome trace-event JSON
//     viewable in Perfetto, CSV series, and a text "explain" report
//     that attributes each stalled or slow flow to a blackholed path,
//     link loss, queue congestion or sender starvation.
//
// The whole layer hangs off a nil-checked *Recorder pointer: every
// instrumentation site is a method call whose receiver is nil when
// tracing is disabled, so the disabled path is a single predictable
// branch and simulation results (and BENCH e2e metrics) are
// bit-identical with and without the package linked in.
//
// Determinism: the Recorder consumes no randomness and observes only
// the single-threaded sim timeline, so a traced run's event stream —
// and every export derived from it — is byte-identical for a given
// seed, at any sweep parallelism.
package telemetry

import (
	"fmt"

	"polyraptor/internal/sim"
)

// EventKind is the type tag of a recorded event.
type EventKind uint8

// Event kinds. Arg's meaning depends on the kind; events that name a
// fabric entity (drops, faults) carry a label ID in Arg, resolved via
// Recorder.LabelName.
const (
	// EvOpen: session/flow opened. Recorded via OpenFlow.
	EvOpen EventKind = iota
	// EvClose: one receiver of the flow completed. Via CloseFlow.
	EvClose
	// EvPull: receiver sent a pull; Host = receiver, Arg = target host.
	EvPull
	// EvSymbol: novel data arrival (rateless symbol / TCP segment);
	// Host = receiver, Arg = ESI or sequence number.
	EvSymbol
	// EvDup: duplicate data arrival.
	EvDup
	// EvTrim: trimmed header arrival (payload cut at a switch).
	EvTrim
	// EvStall: receiver stall guard fired; Arg = pulls re-primed.
	EvStall
	// EvCtrl: completion-control message sent; Arg = target host.
	EvCtrl
	// EvCtrlAck: completion-control ack received; Arg = acking host.
	EvCtrlAck
	// EvRetransmit: TCP retransmission; Arg = sequence number.
	EvRetransmit
	// EvTimeout: TCP RTO fired; Arg = backoff exponent.
	EvTimeout
	// EvCwnd: TCP congestion window changed on a loss/recovery event;
	// Arg = cwnd in milli-segments.
	EvCwnd
	// EvFault: chaos fault action executed; Flow = -1, Arg = label ID
	// of the target ("down link agg-0-1<->core-3").
	EvFault
	// EvRouteDrop: packet blackholed at a switch (killed switch or no
	// live egress candidate); Arg = label ID of the switch.
	EvRouteDrop
	// EvLinkDrop: packet destroyed on a down or lossy link; Arg =
	// label ID of the port.
	EvLinkDrop
	// EvQueueDrop: packet dropped by a full egress queue; Arg = label
	// ID of the port.
	EvQueueDrop

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"open", "close", "pull", "symbol", "dup", "trim", "stall",
	"ctrl", "ctrl-ack", "retransmit", "timeout", "cwnd",
	"fault", "route-drop", "link-drop", "queue-drop",
}

// String returns the kind's short name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded occurrence: 32 bytes, stored by value in arena
// blocks so recording never allocates per event.
type Event struct {
	// At is the sim time of the event.
	At sim.Time
	// Arg is kind-specific (see the kind constants).
	Arg int64
	// Flow is the flow the event belongs to, or -1 for global events.
	Flow int32
	// Host is the host where the event happened, or -1.
	Host int32
	// Kind tags the event.
	Kind EventKind
}

// blockSize is the arena granularity: events per block. A block is
// 256 KB; capacities round up to whole blocks.
const blockSize = 1 << 13

// FlowInfo is the per-flow metadata the recorder keeps alongside the
// event ring, registered at open and finalized at close so exporters
// can label lanes and compute goodput without a second pass.
type FlowInfo struct {
	// Flow is the flow ID.
	Flow int32
	// Proto names the transport ("rq", "tcp", "dctcp").
	Proto string
	// Src is the (first) sending host; -1 when multi-source.
	Src int32
	// Dst is the receiving host; -1 when multicast (many receivers).
	Dst int32
	// Bytes is the transfer size per receiver.
	Bytes int64
	// Receivers is how many completions the flow needs (multicast
	// groups complete once per member).
	Receivers int
	// Start is the open time; End the latest completion.
	Start, End sim.Time
	// Closed counts receivers that completed.
	Closed int
}

// Done reports whether every receiver of the flow completed.
func (f *FlowInfo) Done() bool { return f.Closed >= f.Receivers }

// GoodputGbps is the flow's goodput over its lifetime, 0 until done.
func (f *FlowInfo) GoodputGbps() float64 {
	if !f.Done() || f.End <= f.Start {
		return 0
	}
	return float64(f.Bytes*int64(f.Receivers)) * 8 / (f.End - f.Start).Seconds() / 1e9
}

// Recorder is the flight recorder: an arena-backed ring of events plus
// the flow table and a label intern pool. All methods are safe on a
// nil receiver and do nothing — a nil *Recorder IS the disabled state,
// so instrumentation sites need no separate enabled flag.
//
// Storage is a chronological list of fixed-size arena blocks. With a
// capacity set, the list becomes a ring: when full, the oldest block
// is recycled (flight-recorder semantics — the most recent events
// win) and Dropped counts what was overwritten.
type Recorder struct {
	blocks    [][]Event
	maxBlocks int // 0 = unbounded
	appended  uint64
	dropped   uint64

	labels   []string
	labelIDs map[string]int64

	flows     map[int32]*FlowInfo
	flowOrder []int32
}

// NewRecorder returns a recorder holding at most capacity events
// (rounded up to whole arena blocks); capacity <= 0 is unbounded.
func NewRecorder(capacity int) *Recorder {
	r := &Recorder{
		labelIDs: map[string]int64{},
		flows:    map[int32]*FlowInfo{},
	}
	if capacity > 0 {
		r.maxBlocks = (capacity + blockSize - 1) / blockSize
	}
	return r
}

// Record appends an event. It is the hot-path entry: on a nil
// receiver (tracing disabled) it is a single branch and no work.
//
//polyvet:noalloc called per simulated packet; block arena amortizes growth in grow
//polyvet:inline the disabled-tracing case must cost one branch, not a call
func (r *Recorder) Record(at sim.Time, flow int32, kind EventKind, host int32, arg int64) {
	if r == nil {
		return
	}
	r.append(Event{At: at, Arg: arg, Flow: flow, Host: host, Kind: kind})
}

// RecordLabel appends an event whose Arg names a fabric entity,
// interning the label string.
func (r *Recorder) RecordLabel(at sim.Time, flow int32, kind EventKind, host int32, label string) {
	if r == nil {
		return
	}
	r.append(Event{At: at, Arg: r.labelID(label), Flow: flow, Host: host, Kind: kind})
}

func (r *Recorder) append(ev Event) {
	n := len(r.blocks)
	if n == 0 || len(r.blocks[n-1]) == blockSize {
		r.grow()
		n = len(r.blocks)
	}
	r.blocks[n-1] = append(r.blocks[n-1], ev)
	r.appended++
}

// grow adds a fresh block, or — at capacity — recycles the oldest
// block to the tail, overwriting the ring's eldest events.
func (r *Recorder) grow() {
	if r.maxBlocks > 0 && len(r.blocks) == r.maxBlocks {
		oldest := r.blocks[0]
		r.dropped += uint64(len(oldest))
		copy(r.blocks, r.blocks[1:])
		r.blocks[len(r.blocks)-1] = oldest[:0]
		return
	}
	r.blocks = append(r.blocks, make([]Event, 0, blockSize))
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return int(r.appended - r.dropped)
}

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events calls fn for every held event in chronological order.
func (r *Recorder) Events(fn func(Event)) {
	if r == nil {
		return
	}
	for _, b := range r.blocks {
		for _, ev := range b {
			fn(ev)
		}
	}
}

// labelID interns a label string and returns its stable ID.
func (r *Recorder) labelID(s string) int64 {
	if id, ok := r.labelIDs[s]; ok {
		return id
	}
	id := int64(len(r.labels))
	r.labels = append(r.labels, s)
	r.labelIDs[s] = id
	return id
}

// LabelName resolves a label ID recorded in an event's Arg.
func (r *Recorder) LabelName(id int64) string {
	if r == nil || id < 0 || id >= int64(len(r.labels)) {
		return ""
	}
	return r.labels[id]
}

// OpenFlow registers a flow and records its EvOpen event. Receivers
// is clamped to at least 1. Reopening a known flow is a no-op for the
// table (multi-source sessions open once per the first sender).
func (r *Recorder) OpenFlow(at sim.Time, flow int32, proto string, src, dst int32, bytes int64, receivers int) {
	if r == nil {
		return
	}
	if receivers < 1 {
		receivers = 1
	}
	if _, ok := r.flows[flow]; !ok {
		r.flows[flow] = &FlowInfo{
			Flow: flow, Proto: proto, Src: src, Dst: dst,
			Bytes: bytes, Receivers: receivers, Start: at,
		}
		r.flowOrder = append(r.flowOrder, flow)
	}
	r.append(Event{At: at, Arg: bytes, Flow: flow, Host: src, Kind: EvOpen})
}

// CloseFlow records one receiver's completion of the flow.
func (r *Recorder) CloseFlow(at sim.Time, flow, host int32) {
	if r == nil {
		return
	}
	if f, ok := r.flows[flow]; ok {
		f.Closed++
		if at > f.End {
			f.End = at
		}
	}
	r.append(Event{At: at, Flow: flow, Host: host, Kind: EvClose})
}

// Flow returns the metadata of a flow, or nil.
func (r *Recorder) Flow(flow int32) *FlowInfo {
	if r == nil {
		return nil
	}
	return r.flows[flow]
}

// Flows returns every registered flow in open order.
func (r *Recorder) Flows() []*FlowInfo {
	if r == nil {
		return nil
	}
	out := make([]*FlowInfo, len(r.flowOrder))
	for i, id := range r.flowOrder {
		out[i] = r.flows[id]
	}
	return out
}
