package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// WriteCSV writes the probe's timeline series in long form —
// series,unit,t_ns,value — one row per (series, tick), series in
// registration order, all-zero series skipped. Cumulative counters
// are exported raw; consumers diff adjacent rows for rates.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "series,unit,t_ns,value")
	for _, s := range t.Probe.Series() {
		if allZero(s.Vals) {
			continue
		}
		for i, v := range s.Vals {
			fmt.Fprintf(bw, "%s,%s,%d,%g\n", csvField(s.Name), s.Unit, int64(s.Times[i]), v)
		}
	}
	return bw.Flush()
}

// WriteEventsCSV writes the raw event ring — t_ns,flow,kind,host,arg —
// in chronological order. Label-carrying events resolve Arg to the
// interned name.
func (t *Trace) WriteEventsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "t_ns,flow,kind,host,arg")
	t.Rec.Events(func(ev Event) {
		arg := fmt.Sprintf("%d", ev.Arg)
		switch ev.Kind {
		case EvFault, EvRouteDrop, EvLinkDrop, EvQueueDrop:
			arg = csvField(t.Rec.LabelName(ev.Arg))
		}
		fmt.Fprintf(bw, "%d,%d,%s,%d,%s\n", int64(ev.At), ev.Flow, ev.Kind, ev.Host, arg)
	})
	return bw.Flush()
}

// csvField quotes a value if it contains CSV metacharacters.
func csvField(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' {
			var out []byte
			out = append(out, '"')
			for j := 0; j < len(s); j++ {
				if s[j] == '"' {
					out = append(out, '"')
				}
				out = append(out, s[j])
			}
			return string(append(out, '"'))
		}
	}
	return s
}
