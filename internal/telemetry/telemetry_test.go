package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"polyraptor/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, 1, EvSymbol, 2, 3)
	r.RecordLabel(0, 1, EvRouteDrop, -1, "core-0")
	r.OpenFlow(0, 1, "rq", 0, 1, 1024, 1)
	r.CloseFlow(0, 1, 1)
	if r.Len() != 0 || r.Dropped() != 0 || r.Flows() != nil || r.Flow(1) != nil {
		t.Fatal("nil recorder must observe nothing")
	}
	r.Events(func(Event) { t.Fatal("nil recorder has no events") })

	var p *Probe
	p.Gauge("x", "u", func() float64 { return 0 })
	p.Start(sim.NewEngine())
	if p.Samples() != 0 || p.Series() != nil {
		t.Fatal("nil probe must observe nothing")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	// Capacity of one block: appending two blocks' worth must keep
	// only the newest block-full of events.
	r := NewRecorder(1)
	n := 2 * blockSize
	for i := 0; i < n; i++ {
		r.Record(sim.Time(i), int32(i), EvSymbol, 0, int64(i))
	}
	if r.Len() != blockSize {
		t.Fatalf("Len = %d, want %d", r.Len(), blockSize)
	}
	if r.Dropped() != uint64(blockSize) {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), blockSize)
	}
	first := true
	var prev sim.Time
	r.Events(func(ev Event) {
		if first {
			if ev.At != sim.Time(blockSize) {
				t.Fatalf("oldest surviving event at %d, want %d", ev.At, blockSize)
			}
			first = false
		} else if ev.At != prev+1 {
			t.Fatalf("events out of order: %d after %d", ev.At, prev)
		}
		prev = ev.At
	})
	if prev != sim.Time(n-1) {
		t.Fatalf("newest event at %d, want %d", prev, n-1)
	}
}

func TestRecorderUnboundedAndLabels(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < blockSize+10; i++ {
		r.RecordLabel(sim.Time(i), 0, EvRouteDrop, -1, "core-1")
	}
	r.RecordLabel(sim.Time(0), 0, EvLinkDrop, -1, "agg-0-0:2")
	if r.Len() != blockSize+11 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
	// Interning: the repeated label shares one ID.
	seen := map[int64]bool{}
	r.Events(func(ev Event) { seen[ev.Arg] = true })
	if len(seen) != 2 {
		t.Fatalf("expected 2 distinct label IDs, got %d", len(seen))
	}
	if r.LabelName(0) != "core-1" || r.LabelName(1) != "agg-0-0:2" {
		t.Fatalf("label names wrong: %q %q", r.LabelName(0), r.LabelName(1))
	}
	if r.LabelName(99) != "" {
		t.Fatal("out-of-range label must be empty")
	}
}

func TestFlowLifecycleAndGoodput(t *testing.T) {
	r := NewRecorder(0)
	r.OpenFlow(sim.Time(1e6), 7, "rq", 3, -1, 1_000_000, 2)
	f := r.Flow(7)
	if f == nil || f.Done() {
		t.Fatal("flow must exist and be open")
	}
	r.CloseFlow(sim.Time(5e6), 7, 10)
	if f.Done() {
		t.Fatal("one of two receivers done must not complete the flow")
	}
	r.CloseFlow(sim.Time(9e6), 7, 11)
	if !f.Done() {
		t.Fatal("flow must be done")
	}
	// 2 MB over 8 ms = 2 Gbps.
	if g := f.GoodputGbps(); g < 1.99 || g > 2.01 {
		t.Fatalf("goodput = %v, want ~2", g)
	}
	// Reopening is a no-op for the table.
	r.OpenFlow(sim.Time(2e6), 7, "rq", 4, -1, 5, 1)
	if got := r.Flow(7); got.Src != 3 || got.Bytes != 1_000_000 {
		t.Fatal("reopen must not clobber flow metadata")
	}
	if len(r.Flows()) != 1 {
		t.Fatalf("Flows() = %d entries, want 1", len(r.Flows()))
	}
}

func TestProbeSamplesAndStops(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProbe(sim.Time(1e6))
	var depth float64
	p.Gauge("q", "pkt", func() float64 { return depth })
	// Protocol events at 0.5 ms intervals for 5 ms, mutating the gauge.
	for i := 1; i <= 10; i++ {
		eng.At(sim.Time(i)*5e5, func() { depth++ })
	}
	p.Start(eng)
	eng.Run()
	// Sample at t=0 plus ticks at 1..5 ms (the 6 ms tick fires with an
	// empty queue... it still samples, then stops rescheduling).
	n := p.Samples()
	if n < 6 || n > 8 {
		t.Fatalf("samples = %d, want ~7", n)
	}
	s := p.Series()
	if len(s) != 1 || s[0].Name != "q" || len(s[0].Vals) != n || len(s[0].Times) != n {
		t.Fatalf("bad series shape: %+v", s)
	}
	if s[0].Vals[0] != 0 || s[0].Vals[n-1] != 10 {
		t.Fatalf("gauge progression wrong: %v", s[0].Vals)
	}
	if eng.Pending() != 0 {
		t.Fatal("probe must let the engine drain")
	}
}

// buildTestTrace assembles a small trace by hand: one completed rq
// flow, one stalled blackholed tcp flow, one stalled starved flow.
func buildTestTrace() *Trace {
	tr := New(Options{Interval: sim.Time(1e6)})
	tr.SetMeta("scenario", "unit")
	tr.SetMeta("seed", "1")
	r := tr.Rec
	r.OpenFlow(0, 1, "rq", 0, 5, 1436_00, 1)
	for i := 0; i < 100; i++ {
		r.Record(sim.Time(i)*1e4, 1, EvPull, 5, 0)
		r.Record(sim.Time(i)*1e4+5e3, 1, EvSymbol, 5, int64(i))
	}
	r.CloseFlow(sim.Time(1e6), 1, 5)

	r.OpenFlow(0, 2, "tcp", 1, 6, 1_000_000, 1)
	r.Record(2e4, 2, EvCwnd, 1, 10_000)
	for i := 0; i < 20; i++ {
		r.RecordLabel(sim.Time(i)*1e5, 2, EvRouteDrop, -1, "core-2")
	}
	r.Record(5e5, 2, EvTimeout, 1, 1)
	r.Record(5e5, 2, EvRetransmit, 1, 0)

	r.OpenFlow(0, 3, "rq", 2, 7, 1024, 1)
	r.Record(1e5, 3, EvPull, 7, 2)
	r.Record(3e5, 3, EvStall, 7, 4)

	tr.Finish(sim.Time(2e6))
	return tr
}

func TestExplainVerdicts(t *testing.T) {
	tr := buildTestTrace()
	diags := tr.Explain()
	if len(diags) != 3 {
		t.Fatalf("got %d diagnoses", len(diags))
	}
	byFlow := map[int32]FlowDiagnosis{}
	for _, d := range diags {
		byFlow[d.Info.Flow] = d
	}
	if d := byFlow[1]; d.Verdict != VerdictCompleted || d.Stalled || d.Symbols != 100 || d.Pulls != 100 {
		t.Fatalf("flow 1: %+v", d)
	}
	if d := byFlow[2]; d.Verdict != VerdictDeadPath || !d.Stalled || d.RouteDrops != 20 ||
		d.TopDropSite != "core-2" || d.TopDropCount != 20 {
		t.Fatalf("flow 2: %+v", d)
	}
	if d := byFlow[3]; d.Verdict != VerdictStarvation || d.Stalls != 1 {
		t.Fatalf("flow 3: %+v", d)
	}

	var buf bytes.Buffer
	if err := tr.WriteExplain(&buf); err != nil {
		t.Fatal(err)
	}
	rep := buf.String()
	for _, want := range []string{
		"3 flows, 1 completed, 2 stalled",
		"verdict: dead-path — 20 packets blackholed, worst at core-2 (20)",
		"verdict: sender-starvation",
		"STALLED",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("explain report missing %q:\n%s", want, rep)
		}
	}
}

func TestWriteChromeIsValidTraceJSON(t *testing.T) {
	tr := buildTestTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
		TraceEvents     []map[string]any  `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.OtherData["scenario"] != "unit" || doc.OtherData["seed"] != "1" {
		t.Fatalf("metadata missing: %v", doc.OtherData)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if _, ok := ev["ts"]; !ok {
			t.Fatalf("event missing ts: %v", ev)
		}
		phases[ph]++
	}
	// Lanes, instants, counters and metadata must all be present.
	for _, ph := range []string{"X", "i", "C", "M"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q events in trace (got %v)", ph, phases)
		}
	}
	if phases["X"] != 3 {
		t.Fatalf("want one span per flow, got %d", phases["X"])
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTestTrace().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTestTrace().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export is not deterministic")
	}
}

func TestWriteCSV(t *testing.T) {
	eng := sim.NewEngine()
	tr := New(Options{Interval: sim.Time(1e6)})
	var v float64
	tr.Probe.Gauge("q edge-0-0:1", "pkt", func() float64 { return v })
	tr.Probe.Gauge("dead", "pkt", func() float64 { return 0 })
	eng.At(2e6, func() { v = 3 })
	tr.Start(eng)
	eng.Run()
	tr.Finish(eng.Now())

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "series,unit,t_ns,value" {
		t.Fatalf("bad header %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("too few rows: %v", lines)
	}
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "dead,") {
			t.Fatal("all-zero series must be skipped")
		}
	}

	var ebuf bytes.Buffer
	tr.Rec.RecordLabel(0, 9, EvQueueDrop, -1, "edge-0-0:1")
	if err := tr.WriteEventsCSV(&ebuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ebuf.String(), "0,9,queue-drop,-1,edge-0-0:1") {
		t.Fatalf("events CSV wrong:\n%s", ebuf.String())
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(sim.Time(i), 1, EvSymbol, 2, int64(i))
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	r := NewRecorder(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(sim.Time(i), 1, EvSymbol, 2, int64(i))
	}
}
