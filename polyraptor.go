// Package polyraptor is the public API of the Polyraptor
// reproduction: a RaptorQ-coded, receiver-driven data transport for
// one-to-many and many-to-one transfer patterns (Alasmar, Parisis,
// Crowcroft — SIGCOMM 2018), together with the packet-level simulation
// stack that regenerates the paper's evaluation.
//
// Three layers are exposed:
//
//   - The systematic rateless codec (EncodeObject / NewObjectDecoder):
//     RFC 6330-architecture RaptorQ — LDPC+HDPC precode, LT encoding
//     with permanently-inactive symbols, inactivation decoding.
//   - The real UDP transport (NewServer / Fetch / FetchMultiSource):
//     the paper's pull-based protocol over any net.PacketConn, running
//     the real codec end to end.
//   - The evaluation harness (Figure1a / Figure1b / Figure1c and the
//     Ablation* helpers): discrete-event simulations on a k-ary
//     FatTree with NDP trimming switches that regenerate every figure
//     of the paper.
//
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results.
package polyraptor

import (
	"context"
	"net"

	"polyraptor/internal/harness"
	"polyraptor/internal/raptorq"
	"polyraptor/internal/rqudp"
)

// Codec types, re-exported from the internal implementation.
type (
	// ObjectEncoder encodes an object into (SBN, ESI)-addressed
	// encoding symbols; systematic and rateless.
	ObjectEncoder = raptorq.ObjectEncoder
	// ObjectDecoder reconstructs an object from any sufficiently large
	// symbol set.
	ObjectDecoder = raptorq.ObjectDecoder
	// BlockLayout describes an object's source-block partitioning.
	BlockLayout = raptorq.BlockLayout
	// CodeParams holds per-block code parameters (K, S, H, L, W, P).
	CodeParams = raptorq.Params
)

// Codec errors.
var (
	// ErrNeedMoreSymbols: fewer than K symbols held for some block.
	ErrNeedMoreSymbols = raptorq.ErrNeedMoreSymbols
	// ErrSingular: held symbols do not determine the block; add more.
	ErrSingular = raptorq.ErrSingular
)

// EncodeObject partitions data into blocks of at most maxBlockK
// symbols of symbolSize bytes and precodes each block. The returned
// encoder generates any encoding symbol on demand:
//
//	enc, _ := polyraptor.EncodeObject(data, 1024, 256)
//	sym := enc.Symbol(0, 5) // source symbol 5 of block 0
//	rep := enc.Symbol(0, uint32(enc.Layout().K[0])) // first repair
func EncodeObject(data []byte, symbolSize, maxBlockK int) (*ObjectEncoder, error) {
	return raptorq.NewObjectEncoder(data, symbolSize, maxBlockK)
}

// EncodeObjectWorkers is EncodeObject with an explicit worker count
// for the per-block precode solves; workers <= 0 selects GOMAXPROCS.
// Blocks are independent, so the produced encoder is byte-identical
// for every worker count.
func EncodeObjectWorkers(data []byte, symbolSize, maxBlockK, workers int) (*ObjectEncoder, error) {
	return raptorq.NewObjectEncoderWorkers(data, symbolSize, maxBlockK, workers)
}

// NewObjectDecoder creates a decoder for an object with the given
// layout (obtained from the encoder or a wire announcement).
func NewObjectDecoder(layout BlockLayout) (*ObjectDecoder, error) {
	return raptorq.NewObjectDecoder(layout)
}

// NewBlockLayout computes the block partitioning for an object of
// size f.
func NewBlockLayout(f int64, symbolSize, maxBlockK int) (BlockLayout, error) {
	return raptorq.NewBlockLayout(f, symbolSize, maxBlockK)
}

// DecodeFailureProb returns the modelled probability that a block
// fails to decode from K+overhead distinct symbols (~1e-2 at zero
// overhead, two decades per extra symbol).
func DecodeFailureProb(overhead int) float64 {
	return raptorq.DecodeFailureProb(overhead)
}

// Transport types, re-exported.
type (
	// Server serves one object to any number of pull-driven receivers
	// over a net.PacketConn.
	Server = rqudp.Server
	// TransportConfig tunes the UDP transport.
	TransportConfig = rqudp.Config
	// FetchStats reports symbols, duplicates, per-sender contributions
	// and retries for one fetch.
	FetchStats = rqudp.FetchStats
)

// DefaultTransportConfig returns LAN-appropriate transport defaults.
func DefaultTransportConfig() TransportConfig { return rqudp.DefaultConfig() }

// NewServer builds a server for one object. Run Serve in a goroutine
// and Close to stop:
//
//	conn, _ := net.ListenPacket("udp", ":9000")
//	srv, _ := polyraptor.NewServer(conn, blob, polyraptor.DefaultTransportConfig())
//	go srv.Serve()
func NewServer(conn net.PacketConn, object []byte, cfg TransportConfig) (*Server, error) {
	return rqudp.NewServer(conn, object, cfg)
}

// Fetch retrieves the object served at remote (unicast).
func Fetch(ctx context.Context, conn net.PacketConn, remote net.Addr, flow uint32, cfg TransportConfig) ([]byte, error) {
	return rqudp.Fetch(ctx, conn, remote, flow, cfg)
}

// FetchMultiSource retrieves one object replicated at every remote,
// pulling from all of them without sender coordination.
func FetchMultiSource(ctx context.Context, conn net.PacketConn, remotes []net.Addr, flow uint32, cfg TransportConfig) ([]byte, error) {
	return rqudp.FetchMultiSource(ctx, conn, remotes, flow, cfg)
}

// FetchMultiSourceStats is FetchMultiSource returning per-transfer
// statistics (symbol counts, per-sender contributions, retries).
func FetchMultiSourceStats(ctx context.Context, conn net.PacketConn, remotes []net.Addr, flow uint32, cfg TransportConfig) ([]byte, FetchStats, error) {
	return rqudp.FetchMultiSourceStats(ctx, conn, remotes, flow, cfg)
}

// Evaluation harness re-exports.
type (
	// SimScale sizes a Figure 1a/1b run (fabric arity, sessions, flow
	// size, load).
	SimScale = harness.Scale
	// FigureSeries is one labelled curve of a regenerated figure.
	FigureSeries = harness.FigureSeries
	// IncastOptions sizes a Figure 1c run.
	IncastOptions = harness.IncastOptions
)

// PaperScale reproduces the figure captions exactly (250-host
// fat-tree, 10,000 x 4 MB sessions) — minutes of CPU.
func PaperScale() SimScale { return harness.PaperScale() }

// BenchScale is a load-preserving scaled-down configuration.
func BenchScale() SimScale { return harness.BenchScale() }

// Figure1a regenerates the paper's Figure 1a (multicast replication:
// rank-ordered session goodput, 1/3 replicas, RQ vs TCP).
func Figure1a(sc SimScale, maxPoints int) []FigureSeries {
	return harness.Figure1a(sc, maxPoints)
}

// Figure1b regenerates Figure 1b (multi-source fetch).
func Figure1b(sc SimScale, maxPoints int) []FigureSeries {
	return harness.Figure1b(sc, maxPoints)
}

// Figure1c regenerates Figure 1c (incast: goodput vs sender count
// with 95% CIs).
func Figure1c(opt IncastOptions) []FigureSeries {
	return harness.Figure1c(opt)
}

// DefaultIncastOptions mirrors the paper's Figure 1c setup.
func DefaultIncastOptions() IncastOptions { return harness.DefaultIncastOptions() }

// BenchIncastOptions is a fast Figure 1c configuration.
func BenchIncastOptions() IncastOptions { return harness.BenchIncastOptions() }
