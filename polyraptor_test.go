package polyraptor_test

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"polyraptor"
)

func TestFacadeCodecRoundTrip(t *testing.T) {
	data := make([]byte, 50_000)
	rand.New(rand.NewSource(1)).Read(data)
	enc, err := polyraptor.EncodeObject(data, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := polyraptor.NewObjectDecoder(enc.Layout())
	if err != nil {
		t.Fatal(err)
	}
	for sbn, k := range enc.Layout().K {
		for i := 0; i < k; i++ {
			if _, err := dec.AddSymbol(sbn, uint32(i), enc.Symbol(sbn, uint32(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !dec.TryDecode() {
		t.Fatal("decode failed with all source symbols")
	}
	got, err := dec.Object()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("facade round trip corrupted data")
	}
}

func TestFacadeLayoutHelpers(t *testing.T) {
	layout, err := polyraptor.NewBlockLayout(10_000, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if layout.Z() != 3 {
		t.Fatalf("Z = %d", layout.Z())
	}
	if p := polyraptor.DecodeFailureProb(0); p != 1e-2 {
		t.Fatalf("DecodeFailureProb(0) = %v", p)
	}
}

func TestFacadeUDPTransfer(t *testing.T) {
	obj := make([]byte, 120_000)
	rand.New(rand.NewSource(2)).Read(obj)
	srvConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := polyraptor.NewServer(srvConn, obj, polyraptor.DefaultTransportConfig())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := polyraptor.Fetch(ctx, conn, srv.Addr(), 1, polyraptor.DefaultTransportConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, obj) {
		t.Fatal("facade UDP fetch corrupted object")
	}
}

func TestFacadeSimulationScales(t *testing.T) {
	paper := polyraptor.PaperScale()
	if paper.FatTreeK != 10 || paper.Sessions != 10000 || paper.Bytes != 4<<20 {
		t.Fatalf("paper scale = %+v", paper)
	}
	bench := polyraptor.BenchScale()
	if bench.Sessions >= paper.Sessions {
		t.Fatal("bench scale not smaller than paper scale")
	}
	opt := polyraptor.DefaultIncastOptions()
	if opt.SenderCounts[len(opt.SenderCounts)-1] != 70 {
		t.Fatalf("incast default must reach 70 senders: %v", opt.SenderCounts)
	}
	if len(opt.BytesPerSender) != 2 {
		t.Fatal("incast default must cover both block sizes")
	}
}

func TestFacadeFigure1cTiny(t *testing.T) {
	opt := polyraptor.IncastOptions{
		FatTreeK:       4,
		SenderCounts:   []int{2, 6},
		BytesPerSender: []int64{70 << 10},
		Repetitions:    2,
		Seed:           1,
		Trimming:       true,
	}
	series := polyraptor.Figure1c(opt)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Y) != 2 {
			t.Fatalf("%s: %d points", s.Label, len(s.Y))
		}
	}
}
