package polyraptor_test

// One benchmark per table/figure of the paper (plus the ablations in
// DESIGN.md). Each bench regenerates its figure at a load-preserving
// scaled-down configuration (see EXPERIMENTS.md for the scaling
// argument and paper-scale results from cmd/polybench) and prints the
// series the paper plots — who wins, by what factor, where crossings
// fall — exactly once, regardless of b.N.
//
// Benchmarked time is the full experiment (workload generation,
// simulation, reduction), so these double as end-to-end performance
// regressions for the simulator.

import (
	"fmt"
	"sync"
	"testing"

	"polyraptor"
	"polyraptor/internal/harness"
	"polyraptor/internal/stats"
	"polyraptor/internal/workload"
)

var printOnce sync.Map

// printSeries prints a figure table once per benchmark name.
func printSeries(name, xLabel string, series []polyraptor.FigureSeries) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	var cols []stats.Series
	var xs []string
	for i, s := range series {
		if i == 0 {
			for _, x := range s.X {
				xs = append(xs, fmt.Sprintf("%.0f", x))
			}
		}
		cols = append(cols, stats.Series{Name: s.Label, Points: s.Y})
		if s.YErr != nil {
			cols = append(cols, stats.Series{Name: s.Label + " ±CI", Points: s.YErr})
		}
	}
	fmt.Printf("\n== %s (goodput, Gbps) ==\n%s\n", name, stats.RenderTable(xLabel, xs, cols))
}

// BenchmarkFigure1aMulticast regenerates Figure 1a: distributed
// storage replication, rank-ordered per-session goodput for 1 and 3
// replicas, Polyraptor (RQ multicast) versus TCP (multi-unicast).
func BenchmarkFigure1aMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := polyraptor.Figure1a(polyraptor.BenchScale(), 12)
		printSeries("Figure 1a — multicast replication", "rank", series)
	}
}

// BenchmarkFigure1bMultiSource regenerates Figure 1b: multi-source
// fetch from 1 and 3 replica servers, RQ versus uncoordinated TCP
// partial fetches.
func BenchmarkFigure1bMultiSource(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := polyraptor.Figure1b(polyraptor.BenchScale(), 12)
		printSeries("Figure 1b — multi-source fetch", "rank", series)
	}
}

// BenchmarkFigure1cIncast regenerates Figure 1c: synchronized short
// flows, aggregate goodput versus sender count with 95% CIs, for
// 256 KB and 70 KB blocks.
func BenchmarkFigure1cIncast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := polyraptor.Figure1c(polyraptor.BenchIncastOptions())
		printSeries("Figure 1c — incast", "senders", series)
	}
}

// BenchmarkDecodeOverheadCurve regenerates the paper's footnote-2
// table (decode failure probability vs received overhead) using the
// real codec, and reports failure rates as bench metrics.
func BenchmarkDecodeOverheadCurve(b *testing.B) {
	rates := make([]float64, 3)
	for i := 0; i < b.N; i++ {
		for o := 0; o <= 2; o++ {
			rates[o] = harness.MeasureDecodeFailure(64, o, 200, int64(i+1))
		}
	}
	if _, loaded := printOnce.LoadOrStore("overhead", true); !loaded {
		fmt.Printf("\n== Decode failure vs overhead (K=64, real codec) ==\n")
		for o, r := range rates {
			fmt.Printf("K+%d: measured %.4f   model %.1e\n", o, r, polyraptor.DecodeFailureProb(o))
		}
		fmt.Println()
	}
	b.ReportMetric(rates[0], "fail@+0")
	b.ReportMetric(rates[2], "fail@+2")
}

// BenchmarkAblationNoTrim (A1): Polyraptor incast with and without
// NDP packet trimming.
func BenchmarkAblationNoTrim(b *testing.B) {
	var res harness.AblationNoTrimResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAblationNoTrim(4, 12, 70<<10, 1)
	}
	if _, loaded := printOnce.LoadOrStore("A1", true); !loaded {
		fmt.Printf("\n== A1: packet trimming (12-way incast, 70KB) ==\nwith trimming:    %.3f Gbps\nwithout trimming: %.3f Gbps\n\n",
			res.WithTrim, res.WithoutTrim)
	}
	b.ReportMetric(res.WithTrim, "trim-Gbps")
	b.ReportMetric(res.WithoutTrim, "notrim-Gbps")
}

// BenchmarkAblationInitialWindow (A2): short-flow completion time
// with and without the first-RTT window blast.
func BenchmarkAblationInitialWindow(b *testing.B) {
	var res harness.AblationIWResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAblationInitialWindow(4, 40<<10, 20, 1)
	}
	if _, loaded := printOnce.LoadOrStore("A2", true); !loaded {
		fmt.Printf("\n== A2: first-RTT window (40KB flows) ==\nwith window: %v mean FCT\npull-only:   %v mean FCT\n\n",
			res.MeanFCTWindow, res.MeanFCTNoWindow)
	}
	b.ReportMetric(float64(res.MeanFCTWindow.Microseconds()), "iw-fct-µs")
	b.ReportMetric(float64(res.MeanFCTNoWindow.Microseconds()), "noiw-fct-µs")
}

// BenchmarkAblationPartitioning (A3): multi-source goodput with ESI
// partitioning versus independent random seeding.
func BenchmarkAblationPartitioning(b *testing.B) {
	var res harness.AblationPartitionResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAblationPartitioning(4, 3, 8, 512<<10, 1)
	}
	if _, loaded := printOnce.LoadOrStore("A3", true); !loaded {
		fmt.Printf("\n== A3: multi-source ESI scheme (3 senders, 512KB) ==\npartitioned: %.3f Gbps\nrandom ESI:  %.3f Gbps\n\n",
			res.GoodputPartitioned, res.GoodputRandom)
	}
	b.ReportMetric(res.GoodputPartitioned, "part-Gbps")
	b.ReportMetric(res.GoodputRandom, "rand-Gbps")
}

// BenchmarkExtensionHotspots (E1): goodput with 30% of agg<->core
// links degraded 10x — the paper's "existence of network hotspots"
// scenario. Spraying + multi-source routing around hotspots versus a
// hash-pinned TCP flow.
func BenchmarkExtensionHotspots(b *testing.B) {
	var res harness.HotspotResult
	for i := 0; i < b.N; i++ {
		res = harness.RunHotspotExperiment(4, 0.3, 10, 8, 1<<20, 1)
	}
	if _, loaded := printOnce.LoadOrStore("E1", true); !loaded {
		fmt.Printf("\n== E1: network hotspots (30%% of core links at 1/10 rate; %d degraded) ==\nRQ 1 source:  %.3f Gbps\nRQ 3 sources: %.3f Gbps\nTCP pinned:   %.3f Gbps\n\n",
			res.DegradedLinks, res.RQ1, res.RQ3, res.TCP1)
	}
	b.ReportMetric(res.RQ3, "rq3-Gbps")
	b.ReportMetric(res.TCP1, "tcp-Gbps")
}

// BenchmarkExtensionDCTCPIncast (E3): the incast sweep with a DCTCP
// baseline added — a modern ECN-driven DC transport still collapses
// under synchronized bursts that overflow the buffer before feedback
// exists, while Polyraptor's trimming absorbs them.
func BenchmarkExtensionDCTCPIncast(b *testing.B) {
	opt := harness.BenchIncastOptions()
	var rows [][3]float64
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range opt.SenderCounts {
			rq := harness.RunIncastRQ(opt, n, 256<<10, 1)
			tcp := harness.RunIncastTCP(opt, n, 256<<10, 1)
			dctcp := harness.RunIncastDCTCP(opt, n, 256<<10, 1)
			rows = append(rows, [3]float64{rq, tcp, dctcp})
		}
	}
	if _, loaded := printOnce.LoadOrStore("E3", true); !loaded {
		fmt.Printf("\n== E3: incast with DCTCP baseline (256KB, goodput Gbps) ==\n%8s %8s %8s %8s\n", "senders", "RQ", "TCP", "DCTCP")
		for i, n := range opt.SenderCounts {
			fmt.Printf("%8d %8.3f %8.3f %8.3f\n", n, rows[i][0], rows[i][1], rows[i][2])
		}
		fmt.Println()
	}
}

// BenchmarkExtensionFlowSizes (E2): web-search and data-mining flow
// size distributions — the paper's "different workloads" question.
func BenchmarkExtensionFlowSizes(b *testing.B) {
	var results []harness.FlowSizeResult
	for i := 0; i < b.N; i++ {
		results = []harness.FlowSizeResult{
			harness.RunFlowSizeExperiment(4, workload.WebSearchDist(), 60, 1),
			harness.RunFlowSizeExperiment(4, workload.DataMiningDist(), 60, 1),
		}
	}
	if _, loaded := printOnce.LoadOrStore("E2", true); !loaded {
		for _, res := range results {
			fmt.Printf("\n== E2: %s workload (mean FCT / goodput by flow size) ==\n", res.Dist)
			for i := range res.RQ {
				fmt.Printf("%-10s  RQ: %10v %.3f Gbps (%d)   TCP: %10v %.3f Gbps (%d)\n",
					res.RQ[i].Label,
					res.RQ[i].MeanFCT, res.RQ[i].MeanGoodput, res.RQ[i].Count,
					res.TCP[i].MeanFCT, res.TCP[i].MeanGoodput, res.TCP[i].Count)
			}
		}
		fmt.Println()
	}
}

// BenchmarkAblationDecodeLatency: sensitivity of session goodput to a
// per-symbol decode cost (the paper's stated future-work question).
func BenchmarkAblationDecodeLatency(b *testing.B) {
	var res harness.AblationDecodeLatencyResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAblationDecodeLatency(4, 512<<10, 2000, 6, 1)
	}
	if _, loaded := printOnce.LoadOrStore("A4", true); !loaded {
		fmt.Printf("\n== A4: decode latency sensitivity (2µs/symbol) ==\nno decode cost:  %.3f Gbps\nwith decode cost: %.3f Gbps\n\n",
			res.GoodputNoLatency, res.GoodputWithLatency)
	}
	b.ReportMetric(res.GoodputNoLatency, "nolat-Gbps")
	b.ReportMetric(res.GoodputWithLatency, "lat-Gbps")
}
